"""Bit-parallel compiled zero-delay simulation (the fast engine).

Every estimator in the framework bottoms out in zero-delay gate
evaluation; the scalar reference in :mod:`repro.logic.simulate` walks
the netlist one vector at a time through per-gate dict lookups.  This
module evaluates whole batches at once, in the spirit of the
hardware-accelerated estimators surveyed alongside the paper
(concurrent-cycle evaluation a la Coburn et al.):

- :func:`compile_circuit` lowers the cached topological gate order
  into a flat plan: integer-indexed net slots plus a generated,
  ``exec``-compiled straight-line Python function in which each gate
  is one bitwise operation on arbitrary-precision integers
  (AND/OR/NAND/NOR/XOR/XNOR/NOT/MUX...; anything else falls back to a
  synthesized truth-table expression),
- net values are *words*: bit ``i`` holds the net's value in vector
  (or cycle) ``i``, so a single pass over the plan evaluates the whole
  batch and ``int.bit_count()`` on ``cur ^ prev`` counts toggles,
- combinational circuits evaluate all N vectors in one pass (lanes);
  sequential circuits pack lanes along *time* and run in adaptive
  chunks, iterating the latch-update masks to a fixed point (a
  feed-forward pipeline converges in its register depth; feedback
  loops degrade gracefully to about one pass per cycle),
- :func:`collect_activity` reproduces the scalar engine's
  :class:`~repro.logic.simulate.ActivityReport` *bit-identically* —
  toggles, ones, switched and clock capacitance — which is what lets
  the high-level models keep the paper's relative-accuracy claims
  while running 20-50x faster.

The engine is selected through ``engine="fast"|"reference"`` on the
public entry points in :mod:`repro.logic.simulate`; circuits the
compiler cannot lower (a gate with more than 8 inputs, say) raise
:class:`CompileError` and the dispatcher silently falls back to the
scalar reference.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, \
    Tuple, Union

from repro import obs
from repro import store as artifact_store
from repro.backend.core import Backend, BackendUnavailable, \
    get_backend, resolve_engine
from repro.logic import gates as gatelib
from repro.logic.gates import GateSpec
from repro.logic.netlist import Circuit
from repro.logic.simulate import ActivityReport, Vector


class CompileError(Exception):
    """The circuit cannot be lowered to the bit-parallel plan."""


# ----------------------------------------------------------------------
# Packed stimulus
# ----------------------------------------------------------------------
@dataclass
class PackedVectors:
    """A batch of input vectors packed one-bit-per-vector.

    ``words[name]`` holds input ``name`` across the whole batch: bit
    ``i`` is the value in vector ``i``.  For sequential circuits the
    batch is interpreted as a time sequence (bit ``i`` = cycle ``i``),
    exactly like a list of per-cycle vector dicts.
    """

    names: List[str]
    n: int
    words: Dict[str, int]

    def __len__(self) -> int:
        return self.n

    def to_vectors(self) -> List[Vector]:
        """Unpack into the scalar engine's list-of-dicts form."""
        return [{name: (self.words[name] >> i) & 1 for name in self.names}
                for i in range(self.n)]

    @classmethod
    def from_vectors(cls, names: Sequence[str],
                     vectors: Sequence[Vector]) -> "PackedVectors":
        words: Dict[str, int] = {}
        for name in names:
            w = 0
            bit = 1
            for vec in vectors:
                if vec[name]:
                    w |= bit
                bit <<= 1
            words[name] = w
        return cls(list(names), len(vectors), words)


def _bernoulli_word(rng: random.Random, n: int, p: float,
                    precision: int = 24) -> int:
    """n-bit word with independent Bernoulli(p) bits.

    p = 0.5 is a single ``getrandbits``; biased probabilities use
    threshold packing: combining ``precision`` uniform words digit by
    digit realizes any dyadic approximation of p without ever looping
    over individual bits.
    """
    if n <= 0:
        return 0
    if p <= 0.0:
        return 0
    if p >= 1.0:
        return (1 << n) - 1
    if p == 0.5:
        return rng.getrandbits(n)
    q = round(p * (1 << precision))
    q = min(max(q, 1), (1 << precision) - 1)
    word = 0
    for j in range(precision):    # digits of q, least significant first
        r = rng.getrandbits(n)
        word = (word | r) if (q >> j) & 1 else (word & r)
    return word


def random_packed_vectors(inputs: Sequence[str], n: int,
                          seed: Optional[int] = None,
                          probs: Optional[Dict[str, float]] = None,
                          precision: int = 24) -> PackedVectors:
    """Packed counterpart of :func:`repro.logic.simulate.random_vectors`.

    Generates the batch directly as one bignum lane per input instead
    of building ``n`` per-vector dicts; ``probs`` gives per-input
    probabilities of 1 (default 0.5), realized to ``precision`` binary
    digits.  The random stream differs from ``random_vectors`` with
    the same seed (the two draw in different orders) but has the same
    statistics.
    """
    rng = random.Random(seed)
    probs = probs or {}
    words = {name: _bernoulli_word(rng, n, probs.get(name, 0.5), precision)
             for name in inputs}
    return PackedVectors(list(inputs), n, words)


def pack_streams(input_ports: Sequence[Tuple[str, int]],
                 streams: Sequence["object"],
                 length: Optional[int] = None) -> PackedVectors:
    """Pack word-level operand streams into per-bit input lanes.

    ``input_ports`` is the RTL component port list ((bus prefix,
    width) pairs); ``streams`` the matching word streams.  Column
    ``i`` of a stream becomes the lane of net ``f"{prefix}{i}"``.

    Streams carrying cached bit planes (:class:`~repro.rtl.streams.
    WordStream`) hand their lanes over directly — the per-cycle
    column scatter below only runs for plain word-list objects.
    """
    if length is None:
        length = min(len(s) for s in streams)
    lane_mask = (1 << length) - 1
    names: List[str] = []
    words: Dict[str, int] = {}
    for (prefix, width), stream in zip(input_ports, streams):
        planes = getattr(stream, "bit_planes", None)
        if planes is not None:
            lanes = planes().lanes
            columns = [(lanes[i] & lane_mask) if i < len(lanes) else 0
                       for i in range(width)]
        else:
            columns = [0] * width
            bit = 1
            for t in range(length):
                word = stream.words[t]
                if word:
                    for i in range(width):
                        if (word >> i) & 1:
                            columns[i] |= bit
                bit <<= 1
        for i in range(width):
            name = f"{prefix}{i}"
            names.append(name)
            words[name] = columns[i]
    return PackedVectors(names, length, words)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def _truth_table_expression(spec: GateSpec, ins: List[str]) -> str:
    """Sum-of-minterms lowering for gate types without a kernel."""
    k = spec.n_inputs
    if k == 0:
        return "M" if spec.fn(()) else "0"
    if k > 8:
        raise CompileError(
            f"gate {spec.name!r} has {k} inputs; truth-table lowering "
            "is capped at 8")
    minterms = [m for m in range(1 << k)
                if spec.fn(tuple((m >> i) & 1 for i in range(k)))]
    if not minterms:
        return "0"
    if len(minterms) == 1 << k:
        return "M"
    invert = len(minterms) > (1 << (k - 1))
    if invert:
        minterms = [m for m in range(1 << k) if m not in set(minterms)]
    terms = []
    for m in minterms:
        lits = [ins[i] if (m >> i) & 1 else f"(M ^ {ins[i]})"
                for i in range(k)]
        terms.append("(" + " & ".join(lits) + ")")
    expr = "(" + " | ".join(terms) + ")"
    return f"(M ^ {expr})" if invert else expr


def _expression(spec: GateSpec, ins: List[str]) -> str:
    """Bitwise bignum expression computing the gate on packed words."""
    name = spec.name
    if name in ("AND2", "AND3", "AND4"):
        return "(" + " & ".join(ins) + ")"
    if name in ("OR2", "OR3", "OR4"):
        return "(" + " | ".join(ins) + ")"
    if name in ("NAND2", "NAND3", "NAND4"):
        return "(M ^ (" + " & ".join(ins) + "))"
    if name in ("NOR2", "NOR3", "NOR4"):
        return "(M ^ (" + " | ".join(ins) + "))"
    if name in ("XOR2", "XOR3"):
        return "(" + " ^ ".join(ins) + ")"
    if name == "XNOR2":
        return f"(M ^ ({ins[0]} ^ {ins[1]}))"
    if name == "INV":
        return f"(M ^ {ins[0]})"
    if name == "BUF":
        return ins[0]
    if name in ("MUX2", "TLATCH"):
        d0, d1, sel = ins
        return f"(({d0} & (M ^ {sel})) | ({d1} & {sel}))"
    if name == "AOI21":
        a, b, c = ins
        return f"(M ^ (({a} & {b}) | {c}))"
    if name == "CONST0":
        return "0"
    if name == "CONST1":
        return "M"
    return _truth_table_expression(spec, ins)


@dataclass
class _LatchPlan:
    data_slot: int
    out_slot: int
    enable_slot: int          # -1 when always enabled
    init: int
    clocked: bool


@dataclass
class CompiledCircuit:
    """Flat bit-parallel evaluation plan for one circuit.

    ``evaluate(V, M)`` fills the gate-output slots of slot-value list
    ``V`` (packed words) in topological order, where ``M`` is the
    all-lanes-set mask.  Plans are cached on the circuit and
    invalidated by structural mutation.
    """

    circuit: Circuit
    version: int
    nets: List[str]                     # circuit.nets order == slot order
    slot: Dict[str, int]
    input_slots: List[int]              # aligned with circuit.inputs
    output_slots: List[int]             # aligned with circuit.outputs
    latches: List[_LatchPlan]
    caps: List[float]                   # load capacitance per slot
    evaluate: Callable[[List[int], int], None]

    @property
    def n_slots(self) -> int:
        return len(self.nets)


#: Artifact kind under which plans land in :mod:`repro.store`.
STORE_KIND = "fastsim"


def _bind_plan(circuit: Circuit, version: int, nets: List[str],
               caps: List[float],
               evaluate: Callable[[List[int], int], None]
               ) -> CompiledCircuit:
    """Bind a generated kernel + slot layout to ``circuit``.

    The slot layout (``nets`` order) may come from a *different*
    circuit object with the same structure — input/output/latch slot
    indices are always rederived from the bound circuit by net name,
    which is what makes store-rehydrated plans construction-order
    independent.
    """
    slot = {net: i for i, net in enumerate(nets)}
    return CompiledCircuit(
        circuit=circuit,
        version=version,
        nets=nets,
        slot=slot,
        input_slots=[slot[n] for n in circuit.inputs],
        output_slots=[slot[n] for n in circuit.outputs],
        latches=[_LatchPlan(slot[l.data], slot[l.output],
                            slot[l.enable] if l.enable is not None else -1,
                            1 if l.init else 0, l.clocked)
                 for l in circuit.latches],
        caps=caps,
        evaluate=evaluate,
    )


def _rehydrate_plan(circuit: Circuit, version: int,
                    payload: Dict[str, object]
                    ) -> Optional[CompiledCircuit]:
    """Rebuild a compiled plan from a store payload, or ``None``.

    Any structural disagreement between the payload and the live
    circuit (possible only on a fingerprint collision or a corrupted
    entry) is treated as a plain miss.
    """
    nets = payload.get("nets")
    caps = payload.get("caps")
    if not isinstance(nets, list) or not isinstance(caps, list) \
            or len(nets) != len(caps):
        return None
    if len(nets) != len(circuit.nets) or set(nets) != set(circuit.nets):
        return None
    try:
        evaluate = artifact_store.load_function(
            payload["code"], "__fastsim_eval")
        return _bind_plan(circuit, version, list(nets),
                          [float(c) for c in caps], evaluate)
    except Exception:
        return None


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Lower ``circuit`` to its bit-parallel plan.

    Three cache layers, cheapest first: the plan cached on the
    circuit object (invalidated by structural mutation), the
    content-addressed plan store keyed by
    :meth:`~repro.logic.netlist.Circuit.fingerprint` (shared across
    objects and — with ``REPRO_STORE`` — across processes), and a
    fresh compile, whose result is published back to the store.
    """
    plan = getattr(circuit, "_fastsim_plan", None)
    version = getattr(circuit, "_version", 0)
    if isinstance(plan, CompiledCircuit) and plan.version == version:
        return plan

    st = artifact_store.get_store()
    fp = circuit.fingerprint()
    payload = st.get(fp, STORE_KIND)
    if payload is not None:
        with obs.span("fastsim.rehydrate", circuit=circuit.name):
            plan = _rehydrate_plan(circuit, version, payload)
        if plan is not None:
            obs.inc("fastsim.rehydrates")
            circuit._fastsim_plan = plan
            return plan

    with obs.span("fastsim.compile", circuit=circuit.name) as sp:
        try:
            order = circuit.topological_gates()
        except ValueError as exc:
            raise CompileError(str(exc)) from exc
        nets = circuit.nets
        slot = {net: i for i, net in enumerate(nets)}

        lines = ["def __fastsim_eval(V, M):"]
        for gate in order:
            ins = [f"V[{slot[n]}]" for n in gate.inputs]
            lines.append(f"    V[{slot[gate.output]}] = "
                         f"{_expression(gate.spec, ins)}")
        if len(lines) == 1:
            lines.append("    pass")
        source = "\n".join(lines)
        code = compile(source, f"<fastsim:{circuit.name}>", "exec")
        namespace: Dict[str, object] = {}
        exec(code, namespace)
        sp.set("gates", len(order))
        sp.set("nets", len(nets))
        obs.inc("fastsim.compiles")

    caps_map = circuit.load_capacitances()
    plan = _bind_plan(circuit, version, nets,
                      [caps_map[n] for n in nets],
                      namespace["__fastsim_eval"])  # type: ignore[arg-type]
    st.put(fp, STORE_KIND, {
        "nets": plan.nets,
        "caps": plan.caps,
        "code": artifact_store.code_blob(
            source, f"<fastsim:{fp[:12]}>", code),
    })
    circuit._fastsim_plan = plan
    return plan


# ----------------------------------------------------------------------
# Packed evaluation
# ----------------------------------------------------------------------
Stimulus = Union[Sequence[Vector], PackedVectors]


def _pack_inputs(circuit: Circuit,
                 vectors: Stimulus) -> Tuple[List[int], int]:
    """Input words aligned with ``circuit.inputs``, plus batch size."""
    if isinstance(vectors, PackedVectors):
        return [vectors.words[name] for name in circuit.inputs], vectors.n
    words = []
    for name in circuit.inputs:
        w = 0
        bit = 1
        for vec in vectors:
            if vec[name]:
                w |= bit
            bit <<= 1
        words.append(w)
    return words, len(vectors)


#: Initial time-chunk length for sequential circuits; adapted upward
#: when the latch fixed point converges quickly (feed-forward designs)
#: and back down when it does not (tight feedback loops).
_CHUNK = 64
_CHUNK_MAX = 4096

#: Initial sequential chunk for lane backends: tiny chunks drown
#: numpy in per-op dispatch overhead, so the backend path starts at a
#: size worth amortizing (the adaptive halving can still shrink back
#: to ``_CHUNK`` for tight feedback loops).
_CHUNK_LANES = 1024

#: Settling passes a lane backend tolerates before declining the
#: batch.  Fixed-point settling needs about one pass per cycle of the
#: longest latch-to-latch feedback chain in the chunk, so circuits
#: with tight feedback (counters, accumulators, FSM self-loops) cost
#: O(cycles) passes *no matter the chunk size* — array dispatch
#: overhead then makes every lane backend strictly slower than the
#: bignum engine.  Past this many passes the backend raises
#: :class:`~repro.backend.core.BackendUnavailable` and the dispatcher
#: falls down the engine chain; feed-forward pipelines settle in
#: their register depth and never get near it.
_SETTLE_BAIL = 130


def _pack_inputs_backend(circuit: Circuit, vectors: Stimulus,
                         be: Backend) -> Tuple[List[object], int]:
    """Input backend words aligned with ``circuit.inputs``.

    Packing a million-cycle bignum into lane arrays costs real time,
    and characterization loops replay the same stimulus against many
    circuits — so converted words are cached on the
    :class:`PackedVectors` object per backend.  The cache relies on
    ``PackedVectors`` being effectively immutable (nothing in the
    codebase mutates ``words`` after construction).
    """
    if be.name == "bignum":
        return _pack_inputs(circuit, vectors)    # type: ignore[return-value]
    if isinstance(vectors, PackedVectors):
        cache = getattr(vectors, "_backend_words", None)
        if cache is None:
            cache = {}
            vectors._backend_words = cache
        entry = cache.get(be.name)
        if entry is None:
            entry = {name: be.from_int(w, vectors.n)
                     for name, w in vectors.words.items()}
            cache[be.name] = entry
        return [entry[name] for name in circuit.inputs], vectors.n
    in_ints, n = _pack_inputs(circuit, vectors)
    return [be.from_int(w, n) for w in in_ints], n


def _iter_chunks(plan: CompiledCircuit, in_words: List[int], n_cycles: int,
                 initial_state: Optional[Dict[str, int]]
                 ) -> Iterator[Tuple[List[int], int, int, int]]:
    """Yield settled slot words chunk by chunk.

    Each item is ``(V, base, c, mask)``: ``V[slot]`` holds the net's
    packed values for cycles ``base .. base+c-1`` (bit ``t-base`` =
    cycle ``t``).  Combinational circuits produce a single chunk
    covering the whole batch; sequential circuits iterate the latch
    update masks to a fixed point per chunk (bits 0..k of every latch
    word are exact after k passes, so at most ``c+1`` passes settle a
    chunk of ``c`` cycles).
    """
    circuit = plan.circuit
    latches = plan.latches
    if initial_state is None:
        state = [lp.init for lp in latches]
    else:
        state = [1 if initial_state[l.output] else 0
                 for l in circuit.latches]

    evaluate = plan.evaluate
    chunk = n_cycles if not latches else _CHUNK
    base = 0
    while base < n_cycles:
        c = min(chunk, n_cycles - base)
        mask = (1 << c) - 1
        V = [0] * plan.n_slots
        for s, w in zip(plan.input_slots, in_words):
            V[s] = (w >> base) & mask

        if not latches:
            evaluate(V, mask)
            yield V, base, c, mask
            base += c
            continue

        q = list(state)           # bit 0 carries the incoming state
        nxt: List[int] = q
        iters = 0
        while True:
            for lp, qw in zip(latches, q):
                V[lp.out_slot] = qw
            evaluate(V, mask)
            nxt = []
            q2 = []
            for lp, sb in zip(latches, state):
                d = V[lp.data_slot] & mask
                if lp.enable_slot >= 0:
                    e = V[lp.enable_slot]
                    d = (d & e) | (V[lp.out_slot] & (mask ^ e))
                nxt.append(d)
                q2.append(((d << 1) & mask) | sb)
            iters += 1
            if q2 == q:
                break
            if iters > c + 2:     # cannot happen; guards the invariant
                raise RuntimeError(
                    "fastsim: latch fixed point failed to converge")
            q = q2
        yield V, base, c, mask
        state = [(d >> (c - 1)) & 1 for d in nxt]
        base += c
        if iters <= max(2, chunk // 8):
            chunk = min(chunk * 2, _CHUNK_MAX)
        elif iters > chunk // 2:
            chunk = max(_CHUNK, chunk // 2)


def _iter_chunks_backend(plan: CompiledCircuit, in_words: List[object],
                         n_cycles: int,
                         initial_state: Optional[Dict[str, int]],
                         be: Backend) -> Iterator[Tuple[List[object], int,
                                                        int, object]]:
    """Backend-generic :func:`_iter_chunks`.

    Same contract, but slot values and the mask are *backend words*
    (``in_words`` must already be backend words spanning all
    ``n_cycles`` bits).  The exec-compiled plan body runs unchanged —
    numpy lane arrays support the same ``& | ^`` operators the bignum
    path uses — and everything carry- or shape-dependent (chunk
    extraction, the latch shift-by-one, convergence equality) goes
    through the backend primitives.  Chunk bases stay 64-bit-aligned
    (chunk lengths are multiples of 64 except possibly the final
    chunk), which is what lets lane backends slice without bit skew.
    """
    circuit = plan.circuit
    latches = plan.latches
    if initial_state is None:
        state = [lp.init for lp in latches]
    else:
        state = [1 if initial_state[l.output] else 0
                 for l in circuit.latches]

    evaluate = plan.evaluate
    chunk = n_cycles if not latches else \
        (_CHUNK if be.name == "bignum" else _CHUNK_LANES)
    base = 0
    while base < n_cycles:
        c = min(chunk, n_cycles - base)
        mask = be.ones_mask(c)
        V: List[object] = [0] * plan.n_slots
        for s, w in zip(plan.input_slots, in_words):
            V[s] = be.extract(w, base, c)

        if not latches:
            evaluate(V, mask)
            yield V, base, c, mask
            base += c
            continue

        q = [be.from_int(sb, c) for sb in state]
        nxt: List[object] = q
        iters = 0
        while True:
            for lp, qw in zip(latches, q):
                V[lp.out_slot] = qw
            evaluate(V, mask)
            nxt = []
            q2 = []
            for lp, sb in zip(latches, state):
                d = V[lp.data_slot] & mask
                if lp.enable_slot >= 0:
                    e = V[lp.enable_slot]
                    d = (d & e) | (V[lp.out_slot] & (mask ^ e))
                nxt.append(d)
                q2.append(be.shift_in_time(d, c, sb))
            iters += 1
            if all(be.equal(a, b) for a, b in zip(q2, q)):
                break
            if iters > c + 2:     # cannot happen; guards the invariant
                raise RuntimeError(
                    "fastsim: latch fixed point failed to converge")
            if iters > _SETTLE_BAIL and c > _SETTLE_BAIL \
                    and be.name != "bignum":
                if obs.enabled():
                    obs.inc(f"fastsim.backend.{be.name}.settle_bail", 1)
                raise BackendUnavailable(
                    f"{be.name}: tight sequential feedback "
                    f"({iters} settling passes on a {c}-cycle chunk)")
            q = q2
        yield V, base, c, mask
        state = [be.get_bit(d, c - 1) for d in nxt]
        base += c
        if iters <= max(2, chunk // 8):
            chunk = min(chunk * 2, _CHUNK_MAX)
        elif iters > chunk // 2:
            chunk = max(_CHUNK, chunk // 2)


def collect_activity(circuit: Circuit, vectors: Stimulus,
                     initial_state: Optional[Dict[str, int]] = None
                     ) -> ActivityReport:
    """Bit-parallel activity collection.

    Produces an :class:`ActivityReport` bit-identical to the scalar
    reference (:func:`repro.logic.simulate.collect_activity` with
    ``engine="reference"``): same toggles, ones, switched and clock
    capacitance, including the cycles-vs-boundaries convention pinned
    in the report's docstring.
    """
    sp = obs.span("fastsim.collect_activity", circuit=circuit.name)
    with sp:
        plan = compile_circuit(circuit)
        in_words, n = _pack_inputs(circuit, vectors)

        n_slots = plan.n_slots
        toggles = [0] * n_slots
        ones = [0] * n_slots
        prev = [0] * n_slots
        enabled_latch_cycles = 0
        clocked_plain = sum(1 for lp in plan.latches
                            if lp.clocked and lp.enable_slot < 0)
        clocked_enable_slots = [lp.enable_slot for lp in plan.latches
                                if lp.clocked and lp.enable_slot >= 0]
        first = True
        n_chunks = 0
        for V, base, c, mask in _iter_chunks(plan, in_words, n,
                                             initial_state):
            n_chunks += 1
            first_mask = mask ^ 1 if first else mask
            for i in range(n_slots):
                w = V[i] & mask
                ones[i] += w.bit_count()
                d = (w ^ ((w << 1) | prev[i])) & first_mask
                toggles[i] += d.bit_count()
                prev[i] = (w >> (c - 1)) & 1
            if clocked_plain or clocked_enable_slots:
                # The clock toggles twice per counted cycle (all but
                # the last); load-enable latches sit behind a clock
                # gate and only see the clock when enabled.
                cmask = mask if base + c < n else mask >> 1
                enabled_latch_cycles += clocked_plain * cmask.bit_count()
                for es in clocked_enable_slots:
                    enabled_latch_cycles += (V[es] & cmask).bit_count()
            first = False

        switched = 0.0
        for i in range(n_slots):
            t = toggles[i]
            if t:
                switched += plan.caps[i] * t
        clock_cap = 0.0
        if circuit.latches and n > 1:
            clock_cap = 2.0 * gatelib.DFF_CLOCK_CAP * enabled_latch_cycles
        report = ActivityReport(
            cycles=n,
            toggles=dict(zip(plan.nets, toggles)),
            ones=dict(zip(plan.nets, ones)),
            switched_capacitance=switched,
            clock_capacitance=clock_cap,
        )
        sp.add("vectors", n)
        sp.add("chunks", n_chunks)
        sp.set("gates", circuit.gate_count())
    if obs.enabled():
        obs.inc("fastsim.vectors", n)
        if sp.duration > 0:
            obs.gauge("fastsim.vectors_per_s", round(n / sp.duration, 1))
    return report


def collect_activity_backend(circuit: Circuit, vectors: Stimulus,
                             initial_state: Optional[Dict[str, int]] = None,
                             backend: str = "numpy") -> ActivityReport:
    """Activity collection on an explicit packed-word backend.

    Bit-identical to :func:`collect_activity` (and therefore to the
    scalar reference) for every backend; the bignum backend retraces
    the specialized path through the generic primitives, which is what
    the cross-backend identity gates pin.  Raises
    :class:`~repro.backend.core.BackendUnavailable` when the backend
    cannot run — dispatchers catch it and fall down the engine chain.
    """
    be = get_backend(backend)
    sp = obs.span("fastsim.collect_activity", circuit=circuit.name,
                  backend=be.name)
    with sp:
        plan = compile_circuit(circuit)
        in_words, n = _pack_inputs_backend(circuit, vectors, be)

        n_slots = plan.n_slots
        toggles = [0] * n_slots
        ones = [0] * n_slots
        prev = [0] * n_slots
        enabled_latch_cycles = 0
        clocked_plain = sum(1 for lp in plan.latches
                            if lp.clocked and lp.enable_slot < 0)
        clocked_enable_slots = [lp.enable_slot for lp in plan.latches
                                if lp.clocked and lp.enable_slot >= 0]
        first = True
        n_chunks = 0
        for V, base, c, mask in _iter_chunks_backend(plan, in_words, n,
                                                     initial_state, be):
            n_chunks += 1
            # Every slot word leaving the chunk iterator is already
            # masked to c bits (inputs are extracted masked, the mask
            # M is masked, and the bitwise gate ops preserve it), so
            # the stats read V directly.  Cycle 0 of the first chunk
            # has no predecessor: carries=None seeds each word's own
            # bit 0, zeroing that edge without a mask pass.
            o, t, prev = be.batch_stats(V, c, None if first else prev)
            for i in range(n_slots):
                ones[i] += o[i]
                toggles[i] += t[i]
            if clocked_plain or clocked_enable_slots:
                cmask = mask if base + c < n else be.shift_out_time(mask)
                enabled_latch_cycles += clocked_plain * be.popcount(cmask)
                for es in clocked_enable_slots:
                    enabled_latch_cycles += be.popcount(V[es] & cmask)
            first = False

        switched = 0.0
        for i in range(n_slots):
            t = toggles[i]
            if t:
                switched += plan.caps[i] * t
        clock_cap = 0.0
        if circuit.latches and n > 1:
            clock_cap = 2.0 * gatelib.DFF_CLOCK_CAP * enabled_latch_cycles
        report = ActivityReport(
            cycles=n,
            toggles=dict(zip(plan.nets, toggles)),
            ones=dict(zip(plan.nets, ones)),
            switched_capacitance=switched,
            clock_capacitance=clock_cap,
        )
        sp.add("vectors", n)
        sp.add("chunks", n_chunks)
        sp.set("gates", circuit.gate_count())
    if obs.enabled():
        obs.inc("fastsim.vectors", n)
        obs.inc(f"fastsim.backend.{be.name}", n)
        if sp.duration > 0:
            obs.gauge("fastsim.vectors_per_s", round(n / sp.duration, 1))
    return report


def net_words(circuit: Circuit, vectors: Stimulus,
              nets: Optional[Sequence[str]] = None,
              initial_state: Optional[Dict[str, int]] = None
              ) -> Tuple[Dict[str, int], int]:
    """Packed per-net value words over the whole batch.

    Returns ``(words, n)`` where bit ``t`` of ``words[net]`` is the
    net's settled value in vector/cycle ``t``.  ``nets`` defaults to
    every net.
    """
    plan = compile_circuit(circuit)
    in_words, n = _pack_inputs(circuit, vectors)
    wanted = list(nets) if nets is not None else plan.nets
    slots = [plan.slot[net] for net in wanted]
    acc = [0] * len(slots)
    for V, base, c, mask in _iter_chunks(plan, in_words, n, initial_state):
        for j, s in enumerate(slots):
            acc[j] |= (V[s] & mask) << base
    return dict(zip(wanted, acc)), n


def net_words_backend(circuit: Circuit, vectors: Stimulus,
                      nets: Optional[Sequence[str]] = None,
                      initial_state: Optional[Dict[str, int]] = None,
                      backend: str = "numpy"
                      ) -> Tuple[Dict[str, int], int]:
    """:func:`net_words` on an explicit backend (bignums out)."""
    be = get_backend(backend)
    plan = compile_circuit(circuit)
    in_words, n = _pack_inputs_backend(circuit, vectors, be)
    wanted = list(nets) if nets is not None else plan.nets
    slots = [plan.slot[net] for net in wanted]
    acc = [be.zeros(n) for _ in slots]
    for V, base, c, mask in _iter_chunks_backend(plan, in_words, n,
                                                 initial_state, be):
        for j, s in enumerate(slots):
            acc[j] = be.blit(acc[j], V[s] & mask, base)
    return dict(zip(wanted, (be.to_int(w) for w in acc))), n


def net_words_engine(circuit: Circuit, vectors: Stimulus,
                     nets: Optional[Sequence[str]] = None,
                     initial_state: Optional[Dict[str, int]] = None,
                     engine: Optional[str] = None
                     ) -> Tuple[Dict[str, int], int]:
    """:func:`net_words` behind the standard engine dispatch chain.

    ``engine`` follows the framework convention:
    ``"fast"|"numpy"|"reference"|"auto"`` (``None`` takes the
    process default), with the documented degradation chain
    numpy → fast → reference.  All three produce bit-identical
    lanes; the reference path packs a scalar-simulation trace and
    exists so incremental re-estimation can cross-check against the
    slowest, most-trusted engine too.
    """
    from repro.logic.simulate import DEFAULT_ENGINE

    resolved = resolve_engine(engine, DEFAULT_ENGINE,
                              cycles=len(vectors),
                              sequential=bool(circuit.latches))
    if resolved == "numpy":
        try:
            return net_words_backend(circuit, vectors, nets=nets,
                                     initial_state=initial_state)
        except (CompileError, BackendUnavailable):
            resolved = "fast"
    if resolved == "fast":
        try:
            return net_words(circuit, vectors, nets=nets,
                             initial_state=initial_state)
        except CompileError:
            pass
    vecs = vectors.to_vectors() if isinstance(vectors, PackedVectors) \
        else list(vectors)
    from repro.logic.simulate import simulate as scalar_simulate
    trace = scalar_simulate(circuit, vecs, initial_state)
    wanted = list(nets) if nets is not None else circuit.nets
    words = {net: 0 for net in wanted}
    for t, values in enumerate(trace):
        bit = 1 << t
        for net in wanted:
            if values[net]:
                words[net] |= bit
    return words, len(vecs)


def lane_counts(word: int, n: int) -> Tuple[int, int, int]:
    """Activity counts of one packed net lane over ``n`` cycles.

    Returns ``(ones, toggles, last)`` under the framework's pinned
    normalization: ``ones`` over all ``n`` cycles, ``toggles`` over
    the ``n - 1`` cycle boundaries (bit 0 has no predecessor), plus
    the final-cycle bit (used to count enable assertions over cycles
    ``0..n-2`` for clock-capacitance accounting).  Matches
    :func:`collect_activity`'s chunked accumulation exactly.
    """
    if n <= 0:
        return 0, 0, 0
    mask = (1 << n) - 1
    w = word & mask
    ones = w.bit_count()
    toggles = ((w ^ (w << 1)) & mask & ~1).bit_count()
    last = (w >> (n - 1)) & 1
    return ones, toggles, last


def stimulus_fingerprint(vectors: "PackedVectors") -> str:
    """Content hash of a packed stimulus (hex, stable, memoized).

    Covers the batch length and every input lane (order-insensitive:
    names are hashed sorted).  Together with a cone fingerprint and an
    engine name it keys the per-cone activity cache; it is also the
    stimulus half of :func:`repro.store.activity_key`.  Memoized on
    the object — ``PackedVectors`` is immutable by convention.
    """
    cached = getattr(vectors, "_fingerprint", None)
    if cached is not None:
        return cached
    h = hashlib.sha256(b"stimulus/1\x00")
    h.update(str(vectors.n).encode("ascii"))
    for name in sorted(vectors.words):
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
        h.update(b"=")
        h.update(_lane_bytes(vectors.words[name], vectors.n))
    digest = h.hexdigest()
    vectors._fingerprint = digest
    return digest


def input_lane_hashes(vectors: "PackedVectors") -> Dict[str, bytes]:
    """Per-input digest of each stimulus lane, memoized on the object.

    The incremental engine mixes into each cone's cache key only the
    lane hashes of the inputs in that cone's support, so editing (or
    re-deriving) one input stream invalidates exactly the cones that
    can observe it.
    """
    cached = getattr(vectors, "_lane_hashes", None)
    if cached is not None:
        return cached
    hashes = {
        name: hashlib.sha256(_lane_bytes(vectors.words[name], vectors.n)
                             ).digest()
        for name in vectors.words
    }
    vectors._lane_hashes = hashes
    return hashes


def _lane_bytes(word: int, n: int) -> bytes:
    return (word & ((1 << n) - 1)).to_bytes((n + 7) // 8 or 1, "little")


def output_trace(circuit: Circuit, vectors: Stimulus,
                 initial_state: Optional[Dict[str, int]] = None
                 ) -> List[Vector]:
    """Primary-output values per cycle (fast engine)."""
    words, n = net_words(circuit, vectors, nets=circuit.outputs,
                         initial_state=initial_state)
    return [{o: (words[o] >> t) & 1 for o in circuit.outputs}
            for t in range(n)]


def output_trace_backend(circuit: Circuit, vectors: Stimulus,
                         initial_state: Optional[Dict[str, int]] = None,
                         backend: str = "numpy") -> List[Vector]:
    """Primary-output values per cycle on an explicit backend."""
    words, n = net_words_backend(circuit, vectors, nets=circuit.outputs,
                                 initial_state=initial_state,
                                 backend=backend)
    return [{o: (words[o] >> t) & 1 for o in circuit.outputs}
            for t in range(n)]


def evaluate_packed(circuit: Circuit, vectors: Stimulus,
                    state: Optional[Dict[str, int]] = None
                    ) -> Dict[str, int]:
    """Packed analogue of :func:`repro.logic.simulate.evaluate`.

    One combinational settle of the whole batch: every lane sees the
    same latch state (``state`` or the latch initial values) — no
    clock edges are simulated.  Returns per-net packed words.
    """
    plan = compile_circuit(circuit)
    in_words, n = _pack_inputs(circuit, vectors)
    mask = (1 << n) - 1
    V = [0] * plan.n_slots
    for s, w in zip(plan.input_slots, in_words):
        V[s] = w & mask
    for lp, latch in zip(plan.latches, circuit.latches):
        bit = state[latch.output] if state is not None else latch.init
        V[lp.out_slot] = mask if bit else 0
    plan.evaluate(V, mask)
    return {net: V[i] & mask for i, net in enumerate(plan.nets)}
