"""Parametric gate-level circuit generators.

These generators replace the industrial RTL libraries and MCNC/ISCAS
benchmark suites used by the surveyed papers: they produce populations
of datapath and random-logic circuits for

- macro-model characterization (Section II-C1: adders, multipliers),
- complexity/entropy model regression (Sections II-B1/II-B2: random
  functions, random DAG logic),
- power-management case studies (comparators, ALU slices).

All circuits use named primary inputs of the form ``<bus><bit>`` (e.g.
``a3``) so word-level stimulus generators can address them uniformly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.netlist import Circuit
from repro.logic.synthesis import reduce_tree


def bus(name: str, width: int) -> List[str]:
    """Net names of a ``width``-bit bus, LSB first."""
    return [f"{name}{i}" for i in range(width)]


def _full_adder(circuit: Circuit, a: str, b: str, cin: str
                ) -> Tuple[str, str]:
    """Returns (sum, carry) nets."""
    axb = circuit.add_gate("XOR2", [a, b])
    s = circuit.add_gate("XOR2", [axb, cin])
    t1 = circuit.add_gate("AND2", [a, b])
    t2 = circuit.add_gate("AND2", [axb, cin])
    cout = circuit.add_gate("OR2", [t1, t2])
    return s, cout


def ripple_carry_adder(width: int, name: Optional[str] = None) -> Circuit:
    """``width``-bit ripple-carry adder: s = a + b, with carry out."""
    circuit = Circuit(name or f"rca{width}")
    a = circuit.add_inputs(bus("a", width))
    b = circuit.add_inputs(bus("b", width))
    carry = circuit.add_gate("CONST0", [])
    for i in range(width):
        s, carry = _full_adder(circuit, a[i], b[i], carry)
        out = circuit.add_gate("BUF", [s], output=f"s{i}")
        circuit.add_output(out)
    cout = circuit.add_gate("BUF", [carry], output="cout")
    circuit.add_output(cout)
    return circuit


def carry_lookahead_adder(width: int, block: int = 4,
                          name: Optional[str] = None) -> Circuit:
    """Block carry-lookahead adder: s = a + b with carry out.

    Generate/propagate per bit (g = a&b, p = a^b); within each block
    the carries come from two-level lookahead logic, blocks chain
    ripple-style.  Shallower than the ripple adder at higher gate
    count -- the classic area/delay/power alternative the library
    offers the allocation and voltage-scheduling experiments.
    """
    circuit = Circuit(name or f"cla{width}")
    a = circuit.add_inputs(bus("a", width))
    b = circuit.add_inputs(bus("b", width))
    carry = circuit.add_gate("CONST0", [])
    for base in range(0, width, block):
        bits = list(range(base, min(base + block, width)))
        g = [circuit.add_gate("AND2", [a[i], b[i]]) for i in bits]
        p = [circuit.add_gate("XOR2", [a[i], b[i]]) for i in bits]
        carries = [carry]
        for j in range(len(bits)):
            # c_{j+1} = g_j + p_j g_{j-1} + ... + p_j..p_0 c_in
            terms = [g[j]]
            for k in range(j - 1, -1, -1):
                chain = g[k]
                for m in range(k + 1, j + 1):
                    chain = circuit.add_gate("AND2", [chain, p[m]])
                terms.append(chain)
            chain_in = carries[0]
            for m in range(0, j + 1):
                chain_in = circuit.add_gate("AND2", [chain_in, p[m]])
            terms.append(chain_in)
            carries.append(reduce_tree(circuit, "OR", terms))
        for j, i in enumerate(bits):
            s = circuit.add_gate("XOR2", [p[j], carries[j]])
            out = circuit.add_gate("BUF", [s], output=f"s{i}")
            circuit.add_output(out)
        carry = carries[-1]
    cout = circuit.add_gate("BUF", [carry], output="cout")
    circuit.add_output(cout)
    return circuit


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """``width`` x ``width`` unsigned array multiplier.

    Classic carry-save array: partial products ANDed, then rows of full
    adders.  Deep logic nesting makes it the paper's canonical example
    of a module needing input-output macro-models (Section II-C1).
    """
    circuit = Circuit(name or f"mult{width}")
    a = circuit.add_inputs(bus("a", width))
    b = circuit.add_inputs(bus("b", width))
    # partial[i][j] = a[j] & b[i]
    partial = [[circuit.add_gate("AND2", [a[j], b[i]])
                for j in range(width)] for i in range(width)]

    outputs: List[str] = [partial[0][0]]
    # Row-by-row carry-propagate accumulation.
    row = partial[0][1:] + [None]  # type: ignore[list-item]
    acc: List[Optional[str]] = list(partial[0][1:]) + [None]
    for i in range(1, width):
        new_acc: List[Optional[str]] = []
        carry: Optional[str] = None
        for j in range(width):
            terms = [t for t in (acc[j] if j < len(acc) else None,
                                 partial[i][j], carry) if t is not None]
            if not terms:
                s, carry = None, None
            elif len(terms) == 1:
                s, carry = terms[0], None
            elif len(terms) == 2:
                s = circuit.add_gate("XOR2", terms)
                carry = circuit.add_gate("AND2", terms)
            else:
                s, carry = _full_adder(circuit, terms[0], terms[1], terms[2])
            new_acc.append(s)
        outputs.append(new_acc[0])  # type: ignore[arg-type]
        acc = new_acc[1:] + [carry]
    for t in acc:
        outputs.append(t)

    for i, net in enumerate(outputs[:2 * width]):
        if net is None:
            net = circuit.add_gate("CONST0", [])
        out = circuit.add_gate("BUF", [net], output=f"p{i}")
        circuit.add_output(out)
    del row
    return circuit


def equality_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """eq = (a == b), the canonical precomputation example (Fig. 6)."""
    circuit = Circuit(name or f"eq{width}")
    a = circuit.add_inputs(bus("a", width))
    b = circuit.add_inputs(bus("b", width))
    bits = [circuit.add_gate("XNOR2", [a[i], b[i]]) for i in range(width)]
    reduce_tree(circuit, "AND", bits, output="eq")
    circuit.add_output("eq")
    return circuit


def magnitude_comparator(width: int, name: Optional[str] = None) -> Circuit:
    """gt = (a > b), ripple style from MSB."""
    circuit = Circuit(name or f"gt{width}")
    a = circuit.add_inputs(bus("a", width))
    b = circuit.add_inputs(bus("b", width))
    gt: Optional[str] = None
    eq: Optional[str] = None
    for i in reversed(range(width)):
        nb = circuit.add_gate("INV", [b[i]])
        here_gt = circuit.add_gate("AND2", [a[i], nb])
        here_eq = circuit.add_gate("XNOR2", [a[i], b[i]])
        if gt is None:
            gt, eq = here_gt, here_eq
        else:
            below = circuit.add_gate("AND2", [eq, here_gt])
            gt = circuit.add_gate("OR2", [gt, below])
            eq = circuit.add_gate("AND2", [eq, here_eq])
    assert gt is not None
    out = circuit.add_gate("BUF", [gt], output="gt")
    circuit.add_output(out)
    return circuit


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    circuit = Circuit(name or f"parity{width}")
    nets = circuit.add_inputs(bus("x", width))
    while len(nets) > 1:
        nxt = []
        for i in range(0, len(nets) - 1, 2):
            nxt.append(circuit.add_gate("XOR2", [nets[i], nets[i + 1]]))
        if len(nets) % 2:
            nxt.append(nets[-1])
        nets = nxt
    out = circuit.add_gate("BUF", nets, output="parity")
    circuit.add_output(out)
    return circuit


def mux_word(circuit: Circuit, d0: Sequence[str], d1: Sequence[str],
             sel: str, prefix: str) -> List[str]:
    """Word-level 2:1 mux built from MUX2 cells."""
    return [circuit.add_gate("MUX2", [d0[i], d1[i], sel],
                             output=f"{prefix}{i}")
            for i in range(len(d0))]


def random_logic(n_inputs: int, n_gates: int, n_outputs: int,
                 seed: int = 0, name: Optional[str] = None) -> Circuit:
    """Random DAG of library gates, the "random logic" population.

    Gates pick their type from the two-input-dominant distribution
    typical of mapped netlists and wire their inputs uniformly from
    already-defined nets (inputs plus earlier gate outputs).
    """
    rng = random.Random(seed)
    circuit = Circuit(name or f"rand_{n_inputs}_{n_gates}_{seed}")
    nets = circuit.add_inputs(bus("x", n_inputs))
    pool = list(nets)
    types = ["NAND2", "NOR2", "AND2", "OR2", "XOR2", "INV",
             "NAND3", "NOR3", "AOI21"]
    weights = [4, 3, 3, 3, 2, 2, 1, 1, 1]
    for _ in range(n_gates):
        gate_type = rng.choices(types, weights)[0]
        arity = {"INV": 1, "NAND3": 3, "NOR3": 3, "AOI21": 3}.get(gate_type, 2)
        ins = rng.sample(pool, k=min(arity, len(pool)))
        while len(ins) < arity:
            ins.append(rng.choice(pool))
        pool.append(circuit.add_gate(gate_type, ins))
    # Last gates become primary outputs.
    chosen = pool[-n_outputs:]
    for i, net in enumerate(chosen):
        out = circuit.add_gate("BUF", [net], output=f"y{i}")
        circuit.add_output(out)
    return circuit


def counter(width: int, name: Optional[str] = None) -> Circuit:
    """Free-running binary up-counter (sequential benchmark)."""
    circuit = Circuit(name or f"counter{width}")
    enable = circuit.add_input("en")
    q = [f"q{i}" for i in range(width)]
    carry = enable
    for i in range(width):
        d = circuit.add_gate("XOR2", [q[i], carry])
        if i + 1 < width:
            carry = circuit.add_gate("AND2", [q[i], carry])
        circuit.add_latch(d, output=q[i])
        circuit.add_output(q[i])
    return circuit


def shift_register(width: int, name: Optional[str] = None) -> Circuit:
    circuit = Circuit(name or f"shift{width}")
    din = circuit.add_input("din")
    prev = din
    for i in range(width):
        prev = circuit.add_latch(prev, output=f"q{i}")
        circuit.add_output(prev)
    return circuit


def chained_adder_tree(width: int, stages: int,
                       name: Optional[str] = None) -> Circuit:
    """Cascade of adders: a long-combinational-path glitch generator.

    Used by the retiming experiments (Section III-J): deep carry chains
    glitch heavily, so register placement matters for power.
    """
    circuit = Circuit(name or f"addchain{width}x{stages}")
    acc = circuit.add_inputs(bus("a", width))
    carry_outs: List[str] = []
    for s in range(stages):
        operand = circuit.add_inputs(bus(f"b{s}_", width))
        carry = circuit.add_gate("CONST0", [])
        nxt = []
        for i in range(width):
            sm, carry = _full_adder(circuit, acc[i], operand[i], carry)
            nxt.append(sm)
        acc = nxt
        carry_outs.append(carry)
    for i, net in enumerate(acc):
        out = circuit.add_gate("BUF", [net], output=f"s{i}")
        circuit.add_output(out)
    out = circuit.add_gate("BUF", [carry_outs[-1]], output="cout")
    circuit.add_output(out)
    return circuit


def constant_scaler(constant: int, width: int,
                    name: Optional[str] = None) -> Circuit:
    """Combinational y = constant * x as a CSD shift/add-sub network.

    Shifts are pure wiring (bit reindexing); each CSD digit adds or
    subtracts a shifted copy of x, so the datapath is a short chain of
    ripple adders -- the hardware the Table I transformation produces.
    The product is truncated to ``width`` bits.
    """
    from repro.cdfg.transforms import csd_digits

    circuit = Circuit(name or f"scale{constant}_{width}")
    x = circuit.add_inputs(bus("a", width))
    zero = circuit.add_gate("CONST0", [])

    def shifted(amount: int) -> List[str]:
        return [zero] * amount + x[: max(0, width - amount)]

    if constant > 0:
        # Choose the cheaper decomposition: plain binary (adds only)
        # vs canonical signed digits (fewer terms, but subtractors
        # cost extra inverter-row switching).
        binary = [(i, 1) for i in range(constant.bit_length())
                  if (constant >> i) & 1]
        csd = csd_digits(constant)

        def cost(digits_list):
            return sum(1.0 if sign > 0 else 1.7
                       for _s, sign in digits_list)

        digits = binary if cost(binary) <= cost(csd) else csd
    else:
        digits = []
    acc: Optional[List[str]] = None
    for shift, sign in digits:
        term = shifted(shift)
        if acc is None:
            acc = term if sign > 0 else _negate(circuit, term, zero)
            continue
        if sign > 0:
            acc = _add_words(circuit, acc, term, carry_in=None)
        else:
            acc = _sub_words(circuit, acc, term)
    if acc is None:
        acc = [zero] * width
    for i, net in enumerate(acc[:width]):
        out = circuit.add_gate("BUF", [net], output=f"p{i}")
        circuit.add_output(out)
    return circuit


def _add_words(circuit: Circuit, a: Sequence[str], b: Sequence[str],
               carry_in: Optional[str]) -> List[str]:
    carry = carry_in or circuit.add_gate("CONST0", [])
    out: List[str] = []
    for x, y in zip(a, b):
        s, carry = _full_adder(circuit, x, y, carry)
        out.append(s)
    return out


def _sub_words(circuit: Circuit, a: Sequence[str],
               b: Sequence[str]) -> List[str]:
    carry = circuit.add_gate("CONST1", [])
    out: List[str] = []
    for x, y in zip(a, b):
        ny = circuit.add_gate("INV", [y])
        s, carry = _full_adder(circuit, x, ny, carry)
        out.append(s)
    return out


def _negate(circuit: Circuit, term: Sequence[str],
            zero: str) -> List[str]:
    return _sub_words(circuit, [zero] * len(term), term)
