"""Compiled tick-wheel timed simulation (the fast timed engine).

:class:`~repro.logic.eventsim.EventSimulator`'s reference engine pops
one event at a time through per-gate dict traffic — the last
unaccelerated layer after fastsim's zero-delay engine.  This module
compiles the *whole timed schedule* ahead of time and then evaluates
N cycles bit-parallel, one bignum word per (net, tick):

- :func:`compile_timed` discretizes the cell library's transport
  delays onto the integer tick grid of
  :func:`repro.logic.eventsim.tick_grid` and levelizes the circuit
  into a *static* per-tick schedule: a gate is (re)evaluated at every
  tick at which any of its fan-in nets can change, and its output is
  applied ``delay_ticks`` later.  The schedule is lowered to one
  ``exec``-compiled straight-line function — a timing wheel whose
  slots are inlined apply/evaluate kernels on packed words.
- The key observation that makes lanes independent: the *settled*
  value of every net in a cycle is delay-free (equal to the
  zero-delay evaluation), so fastsim's packed functional simulation
  supplies each lane's start and end values and the timed evolution
  of cycle ``t`` never couples to cycle ``t+1``.  Bit ``i`` of every
  kernel word therefore replays cycle ``i``'s waveform, and
  ``int.bit_count()`` tallies toggles, glitches and events with
  popcounts instead of per-event Python.
- The static schedule evaluates a superset of the dynamic engine's
  gate evaluations; the extra evaluations see unchanged inputs and
  apply unchanged outputs, so every counter stays bit-identical to
  the reference (the equivalence suite in ``tests/test_fasttimer.py``
  checks this per net).

:func:`timed_batch` runs one batch and returns raw
:class:`BatchCounts` for ``EventSimulator`` to merge;
:func:`timed_activity` is the standalone batch API with optional
multiprocessing sharding of long vector streams (lanes are
independent given the functional settle, so shards simply re-derive
their boundary state from the packed functional words and partial
reports merge by summation).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro import store as artifact_store
from repro.backend.core import Backend, BackendUnavailable, \
    default_engine, get_backend, resolve_engine
from repro.logic import fastsim
from repro.logic.fastsim import CompileError, PackedVectors, Stimulus
from repro.logic.netlist import Circuit

#: Straight-line kernel size cap: total scheduled applies+evaluations.
#: Past this the generated function stops being worth exec-compiling;
#: the dispatcher falls back to the reference engine.
_MAX_OPS = 60_000


@dataclass
class TimedPlan:
    """Compiled tick-wheel schedule for one circuit.

    ``kernel(C, N, T, M)`` advances one packed window: ``C`` holds the
    per-slot start-value words (cycle-start state of every lane), ``N``
    the per-slot settled words (the functional values the lanes settle
    to; only root slots are read), ``T`` the per-slot toggle
    accumulators and ``M`` the lane mask.  It mutates ``C`` to the
    settled values, adds every applied value change into ``T`` and
    returns the total number of applied changes (events).

    ``kernel_be(C, N, T, M, ANY, PC)`` is the same schedule rendered
    backend-generically: words may be lane arrays, so truthiness and
    popcounts go through the injected ``ANY``/``PC`` callables
    (:meth:`~repro.backend.core.Backend.nonzero` /
    :meth:`~repro.backend.core.Backend.popcount`).  ``T`` always
    holds plain int counters.
    """

    circuit: Circuit
    version: int
    func: fastsim.CompiledCircuit     # zero-delay plan (slots, caps...)
    quantum: object                   # Fraction; tick length in delay units
    n_ticks: int                      # schedule horizon (last apply tick)
    n_ops: int                        # applies + evaluations in the kernel
    kernel: Callable[[List[int], List[int], List[int], int], int]
    kernel_be: Callable[..., int]


#: Artifact kind under which timed plans land in :mod:`repro.store`.
STORE_KIND = "fasttimer"


def _rehydrate_timed(circuit: Circuit, version: int,
                     payload: Dict[str, object]) -> Optional[TimedPlan]:
    """Rebuild a tick-wheel plan from a store payload, or ``None``.

    The kernels index slots positionally, so the payload's slot
    layout must match the functional plan bound to this circuit (it
    always does when both artifacts came from the same compile; a
    mismatch is treated as a miss and triggers a clean recompile).
    """
    try:
        func = fastsim.compile_circuit(circuit)
    except CompileError:
        return None
    if payload.get("nets") != func.nets:
        return None
    try:
        kernel = artifact_store.load_function(
            payload["kernel"], "__fasttimer_eval")
        kernel_be = artifact_store.load_function(
            payload["kernel_be"], "__fasttimer_eval_be")
        num, den = payload["quantum"]
        return TimedPlan(
            circuit=circuit,
            version=version,
            func=func,
            quantum=Fraction(int(num), int(den)),
            n_ticks=int(payload["n_ticks"]),
            n_ops=int(payload["n_ops"]),
            kernel=kernel,
            kernel_be=kernel_be,
        )
    except Exception:
        return None


def compile_timed(circuit: Circuit) -> TimedPlan:
    """Lower ``circuit`` to its tick-wheel plan.

    Cached like the zero-delay plan: on the circuit object, then in
    the content-addressed plan store (fingerprint-keyed, process-
    crossing with ``REPRO_STORE``), then compiled fresh and published
    back.
    """
    from repro.logic import eventsim

    plan = getattr(circuit, "_fasttimer_plan", None)
    version = getattr(circuit, "_version", 0)
    if isinstance(plan, TimedPlan) and plan.version == version:
        return plan

    st = artifact_store.get_store()
    fp = circuit.fingerprint()
    payload = st.get(fp, STORE_KIND)
    if payload is not None:
        with obs.span("fasttimer.rehydrate", circuit=circuit.name):
            plan = _rehydrate_timed(circuit, version, payload)
        if plan is not None:
            obs.inc("fasttimer.rehydrates")
            circuit._fasttimer_plan = plan
            return plan

    with obs.span("fasttimer.compile", circuit=circuit.name) as sp:
        func = fastsim.compile_circuit(circuit)    # raises CompileError
        grid = eventsim.tick_grid(circuit)
        slot = func.slot
        order = circuit.topological_gates()

        # Arrival ticks: the set of ticks at which a net can change.
        # Roots (primary inputs and latch outputs) change only at the
        # cycle boundary, tick 0; a gate output changes delay_ticks
        # after any tick at which the gate is evaluated, and the gate
        # is evaluated whenever any fan-in can change.
        arrivals: Dict[str, frozenset] = {n: frozenset((0,))
                                          for n in circuit.inputs}
        for latch in circuit.latches:
            arrivals[latch.output] = frozenset((0,))
        # schedule[tick] = (applies, evals): slots applied at the tick
        # and gates evaluated at it (both in topological order).
        schedule: Dict[int, Tuple[List[int], List]] = {}

        def at(tick: int) -> Tuple[List[int], List]:
            entry = schedule.get(tick)
            if entry is None:
                entry = schedule[tick] = ([], [])
            return entry

        for s in (slot[n] for n in circuit.inputs):
            at(0)[0].append(s)
        for latch in circuit.latches:
            at(0)[0].append(slot[latch.output])

        n_ops = len(circuit.inputs) + len(circuit.latches)
        for gate in order:
            eval_ticks: set = set()
            for name in gate.inputs:
                eval_ticks |= arrivals.get(name, frozenset())
            d = grid.ticks[gate.output]
            arrivals[gate.output] = frozenset(t + d for t in eval_ticks)
            n_ops += 2 * len(eval_ticks) if d else len(eval_ticks)
            if n_ops > _MAX_OPS:
                raise CompileError(
                    f"timed schedule for {circuit.name!r} exceeds "
                    f"{_MAX_OPS} operations")
            for t in sorted(eval_ticks):
                at(t)[1].append(gate)
                if d:
                    at(t + d)[0].append(slot[gate.output])

        # The schedule is rendered twice from one walk: the bignum
        # flavor tests words with `if _d:` and counts with
        # `.bit_count()`, the backend-generic flavor routes both
        # through injected ANY/PC callables so lane-array words work.
        lines = ["def __fasttimer_eval(C, N, T, M):", "    EV = 0"]
        lines_be = ["def __fasttimer_eval_be(C, N, T, M, ANY, PC):",
                    "    EV = 0"]

        def emit_apply(s: int, src: str) -> None:
            head = [f"    _v = {src}", f"    _d = C[{s}] ^ _v"]
            tail = [f"        T[{s}] += _t",
                    "        EV += _t",
                    f"        C[{s}] = _v"]
            lines.extend(head + ["    if _d:",
                                 "        _t = _d.bit_count()"] + tail)
            lines_be.extend(head + ["    if ANY(_d):",
                                    "        _t = PC(_d)"] + tail)

        emitted_pending = set()
        for tick in sorted(schedule):
            applies, evals = schedule[tick]
            # Phase 1: apply every value arriving at this tick
            # simultaneously; count the lanes in which it changes.
            for s in applies:
                emit_apply(s, f"N[{s}]" if tick == 0 else f"p{s}_{tick}")
            # Phase 2: evaluate affected gates once against the
            # updated values, topological order; zero-delay cells
            # apply inline so later gates in the tick see them.
            for gate in evals:
                s = slot[gate.output]
                expr = fastsim._expression(
                    gate.spec, [f"C[{slot[n]}]" for n in gate.inputs])
                d = grid.ticks[gate.output]
                if d == 0:
                    emit_apply(s, expr)
                else:
                    name = f"p{s}_{tick + d}"
                    if name in emitted_pending:
                        raise CompileError(
                            f"duplicate writer for net slot {s} at tick "
                            f"{tick + d}")
                    emitted_pending.add(name)
                    lines.append(f"    {name} = {expr}")
                    lines_be.append(f"    {name} = {expr}")
        lines.append("    return EV")
        lines_be.append("    return EV")
        namespace: Dict[str, object] = {}
        source = "\n".join(lines)
        source_be = "\n".join(lines_be)
        code = compile(source, f"<fasttimer:{circuit.name}>", "exec")
        code_be = compile(source_be, f"<fasttimer-be:{circuit.name}>",
                          "exec")
        exec(code, namespace)
        exec(code_be, namespace)

        n_ticks = max(schedule) if schedule else 0
        sp.set("gates", circuit.gate_count())
        sp.set("ticks", n_ticks)
        sp.set("ops", n_ops)
        obs.inc("fasttimer.compiles")

    plan = TimedPlan(
        circuit=circuit,
        version=version,
        func=func,
        quantum=grid.quantum,
        n_ticks=n_ticks,
        n_ops=n_ops,
        kernel=namespace["__fasttimer_eval"],  # type: ignore[arg-type]
        kernel_be=namespace["__fasttimer_eval_be"],  # type: ignore[arg-type]
    )
    quantum = Fraction(grid.quantum)
    st.put(fp, STORE_KIND, {
        "nets": func.nets,
        "quantum": [quantum.numerator, quantum.denominator],
        "n_ticks": n_ticks,
        "n_ops": n_ops,
        "kernel": artifact_store.code_blob(
            source, f"<fasttimer:{fp[:12]}>", code),
        "kernel_be": artifact_store.code_blob(
            source_be, f"<fasttimer-be:{fp[:12]}>", code_be),
    })
    circuit._fasttimer_plan = plan
    return plan


# ----------------------------------------------------------------------
# Batch evaluation
# ----------------------------------------------------------------------
@dataclass
class BatchCounts:
    """Raw timed counters for one batch, ready to merge.

    Counted (non-settling) lanes feed ``toggles``/``glitches``; every
    lane feeds ``ones``/``events``.  ``latch_edges_lo`` is the enabled
    clocked-latch count summed over all batch cycles but the last;
    ``latch_edges_last`` the count in the final cycle (committed by
    the merger once a later cycle exists — the zero-delay clock-edge
    convention).
    """

    n: int
    toggles: Dict[str, int]
    ones: Dict[str, int]
    events: int
    glitches: int
    latch_edges_lo: int
    latch_edges_last: int
    final_values: Dict[str, int]
    final_state: Dict[str, int]


def _settled_words(plan: fastsim.CompiledCircuit, in_words: List[int],
                   n: int, state: Optional[Dict[str, int]]) -> List[int]:
    """Per-slot packed functional values over the whole batch."""
    settled = [0] * plan.n_slots
    for V, base, c, mask in fastsim._iter_chunks(plan, in_words, n, state):
        for i in range(plan.n_slots):
            w = V[i] & mask
            if w:
                settled[i] |= w << base
    return settled


def _settled_words_backend(plan: fastsim.CompiledCircuit,
                           in_words: List[object], n: int,
                           state: Optional[Dict[str, int]],
                           be: Backend) -> List[object]:
    """:func:`_settled_words` on backend words (inputs pre-packed)."""
    settled = [be.zeros(n) for _ in range(plan.n_slots)]
    for V, base, c, mask in fastsim._iter_chunks_backend(plan, in_words,
                                                         n, state, be):
        for i in range(plan.n_slots):
            # Chunk words leave the iterator masked to c bits, and
            # bases stay 64-aligned, so the blit needs no re-mask.
            settled[i] = be.blit(settled[i], V[i], base)
    return settled


def timed_batch(circuit: Circuit, vectors: Stimulus,
                prev_values: Dict[str, int],
                state: Optional[Dict[str, int]],
                settling_first: bool,
                backend: Optional[str] = None) -> BatchCounts:
    """Run one packed timed batch.

    ``prev_values`` gives every net's value before the first cycle
    (each lane's waveform starts from the previous cycle's settled
    values); ``state`` the latch state entering the first cycle.
    With ``settling_first`` the first lane only establishes initial
    values: it contributes ``events``/``ones`` but not
    ``toggles``/``glitches``, exactly like the reference engine's
    settling step.  ``backend`` selects the word representation
    (``None``/"bignum" for the native path, "numpy" for lane arrays);
    counters are bit-identical either way.  A backend that cannot run
    the batch (numpy missing, or a lane backend declining a
    tight-feedback settle) degrades to the native path here, so
    callers never see :class:`~repro.backend.core.BackendUnavailable`.
    """
    if backend is not None:
        try:
            be = get_backend(backend)
            if be.name != "bignum":
                return _timed_batch_be(circuit, vectors, prev_values,
                                       state, settling_first, be)
        except BackendUnavailable:
            pass                  # fall through to the bignum path
    plan = compile_timed(circuit)
    func = plan.func
    try:
        in_words, n = fastsim._pack_inputs(circuit, vectors)
    except KeyError as exc:
        # The reference engine lets unspecified inputs hold their
        # previous value; the packed path cannot, so defer to it.
        raise CompileError(f"stimulus missing input {exc}") from exc

    nets = func.nets
    empty = {net: 0 for net in nets}
    if n == 0:
        return BatchCounts(0, dict(empty), dict(empty), 0, 0, 0, 0,
                           dict(prev_values), dict(state or {}))

    with obs.span("fasttimer.batch", circuit=circuit.name) as sp:
        settled = _settled_words(func, in_words, n, state)
        mask_n = (1 << n) - 1
        start = [((settled[i] << 1)
                  | (1 if prev_values[net] else 0)) & mask_n
                 for i, net in enumerate(nets)]

        n_slots = func.n_slots
        toggles = [0] * n_slots
        events = 0
        glitches = 0
        lo = 1 if settling_first else 0

        if settling_first:
            # Settling lane: events only, scratch toggle accumulators.
            C0 = [w & 1 for w in start]
            N0 = [w & 1 for w in settled]
            events += plan.kernel(C0, N0, [0] * n_slots, 1)
        if lo < n:
            wmask = (1 << (n - lo)) - 1
            C = [(w >> lo) & wmask for w in start]
            N = [(w >> lo) & wmask for w in settled]
            events += plan.kernel(C, N, toggles, wmask)
            for i in range(n_slots):
                boundary = ((settled[i] ^ start[i]) >> lo) & wmask
                glitches += toggles[i] - boundary.bit_count()

        ones = [(settled[i] & mask_n).bit_count() for i in range(n_slots)]

        plain = 0
        edges_lo = 0
        edges_last = 0
        for lp, latch in zip(func.latches, circuit.latches):
            if not lp.clocked:
                continue
            if lp.enable_slot < 0:
                plain += 1
            else:
                e = settled[lp.enable_slot]
                edges_lo += (e & (mask_n >> 1)).bit_count()
                edges_last += (e >> (n - 1)) & 1
        edges_lo += plain * (n - 1)
        edges_last += plain

        last = n - 1
        final_values = {net: (settled[i] >> last) & 1
                        for i, net in enumerate(nets)}
        final_state: Dict[str, int] = {}
        for lp, latch in zip(func.latches, circuit.latches):
            if lp.enable_slot >= 0 \
                    and not (settled[lp.enable_slot] >> last) & 1:
                final_state[latch.output] = (settled[lp.out_slot]
                                             >> last) & 1
            else:
                final_state[latch.output] = (settled[lp.data_slot]
                                             >> last) & 1

        sp.add("lanes", n)
        sp.set("ops", plan.n_ops)
    if obs.enabled():
        obs.inc("fasttimer.lanes", n)
        if sp.duration > 0:
            # Packed-word throughput: kernel ops times lanes per wall
            # second — the engine's native work unit.
            obs.gauge("fasttimer.words_per_s",
                      round(plan.n_ops * n / sp.duration, 1))

    return BatchCounts(
        n=n,
        toggles=dict(zip(nets, toggles)),
        ones=dict(zip(nets, ones)),
        events=events,
        glitches=glitches,
        latch_edges_lo=edges_lo,
        latch_edges_last=edges_last,
        final_values=final_values,
        final_state=final_state,
    )


def _timed_batch_be(circuit: Circuit, vectors: Stimulus,
                    prev_values: Dict[str, int],
                    state: Optional[Dict[str, int]],
                    settling_first: bool, be: Backend) -> BatchCounts:
    """:func:`timed_batch` on backend lane words.

    Mirrors the bignum body operation for operation; every popcount,
    shift and bit probe goes through ``be`` so the counters come out
    bit-identical.  The settling lane still runs the scalar bignum
    kernel — it is a single cycle, and ``be.get_bit`` reduces its
    start/settled words to plain ints.
    """
    plan = compile_timed(circuit)
    func = plan.func
    try:
        in_words, n = fastsim._pack_inputs_backend(circuit, vectors, be)
    except KeyError as exc:
        raise CompileError(f"stimulus missing input {exc}") from exc

    nets = func.nets
    empty = {net: 0 for net in nets}
    if n == 0:
        return BatchCounts(0, dict(empty), dict(empty), 0, 0, 0, 0,
                           dict(prev_values), dict(state or {}))

    with obs.span("fasttimer.batch", circuit=circuit.name,
                  backend=be.name) as sp:
        settled = _settled_words_backend(func, in_words, n, state, be)
        start = [be.shift_in_time(settled[i], n,
                                  1 if prev_values[net] else 0)
                 for i, net in enumerate(nets)]

        n_slots = func.n_slots
        toggles = [0] * n_slots
        events = 0
        glitches = 0
        lo = 1 if settling_first else 0

        if settling_first:
            # Settling lane: events only, scratch toggle accumulators.
            C0 = [be.get_bit(w, 0) for w in start]
            N0 = [be.get_bit(w, 0) for w in settled]
            events += plan.kernel(C0, N0, [0] * n_slots, 1)
        if lo < n:
            wmask = be.ones_mask(n - lo)
            C = [be.extract(w, lo, n - lo) for w in start]
            N = [be.extract(w, lo, n - lo) for w in settled]
            events += plan.kernel_be(C, N, toggles, wmask,
                                     be.nonzero, be.popcount)
            for i in range(n_slots):
                boundary = be.extract(settled[i] ^ start[i], lo, n - lo)
                glitches += toggles[i] - be.popcount(boundary)

        # Settled words leave the chunk iterator masked to n bits.
        ones = [be.popcount(settled[i]) for i in range(n_slots)]

        plain = 0
        edges_lo = 0
        edges_last = 0
        lowmask = None
        for lp, latch in zip(func.latches, circuit.latches):
            if not lp.clocked:
                continue
            if lp.enable_slot < 0:
                plain += 1
            else:
                if lowmask is None:
                    lowmask = be.low_mask(n - 1, n)
                e = settled[lp.enable_slot]
                edges_lo += be.popcount(e & lowmask)
                edges_last += be.get_bit(e, n - 1)
        edges_lo += plain * (n - 1)
        edges_last += plain

        last = n - 1
        final_values = {net: be.get_bit(settled[i], last)
                        for i, net in enumerate(nets)}
        final_state: Dict[str, int] = {}
        for lp, latch in zip(func.latches, circuit.latches):
            if lp.enable_slot >= 0 \
                    and not be.get_bit(settled[lp.enable_slot], last):
                final_state[latch.output] = be.get_bit(
                    settled[lp.out_slot], last)
            else:
                final_state[latch.output] = be.get_bit(
                    settled[lp.data_slot], last)

        sp.add("lanes", n)
        sp.set("ops", plan.n_ops)
    if obs.enabled():
        obs.inc("fasttimer.lanes", n)
        obs.inc(f"fasttimer.backend.{be.name}", n)
        if sp.duration > 0:
            obs.gauge("fasttimer.words_per_s",
                      round(plan.n_ops * n / sp.duration, 1))

    return BatchCounts(
        n=n,
        toggles=dict(zip(nets, toggles)),
        ones=dict(zip(nets, ones)),
        events=events,
        glitches=glitches,
        latch_edges_lo=edges_lo,
        latch_edges_last=edges_last,
        final_values=final_values,
        final_state=final_state,
    )


# ----------------------------------------------------------------------
# Standalone batch API + multiprocessing sharding
# ----------------------------------------------------------------------
#: Lanes below which a shard is not worth a worker process.
_MIN_SHARD = 256


def _shard_slice(packed: PackedVectors, lo: int, hi: int) -> PackedVectors:
    m = (1 << (hi - lo)) - 1
    return PackedVectors(
        packed.names, hi - lo,
        {name: (w >> lo) & m for name, w in packed.words.items()})


def _timed_batch_star(args) -> BatchCounts:
    """Module-level worker target (must be picklable)."""
    return timed_batch(*args)


def timed_activity(circuit: Circuit, vectors: Stimulus,
                   workers: Optional[int] = None,
                   engine: Optional[str] = None):
    """Timed :class:`ActivityReport` for ``vectors`` from reset.

    Equivalent to ``EventSimulator(circuit, engine=engine).run(vectors)``
    on a fresh simulator.  ``engine`` takes the full
    "fast"/"numpy"/"reference"/"auto" set (default: the session
    engine, see :func:`repro.backend.core.default_engine`).  With
    ``workers > 1`` (compiled engines only) the lanes are split into
    contiguous shards evaluated in parallel processes: each shard
    re-derives its boundary state from the packed functional settle,
    partial counts merge by summation, and the result is bit-identical
    to the serial run.
    """
    from repro.logic import gates as gatelib
    from repro.logic.eventsim import EventSimulator
    from repro.logic.simulate import ActivityReport, evaluate

    if not isinstance(vectors, PackedVectors):
        vecs = list(vectors)
        try:
            vectors = PackedVectors.from_vectors(circuit.inputs, vecs)
        except KeyError:
            # Unspecified inputs hold their value only in the
            # reference engine; let the simulator handle it.
            return EventSimulator(circuit, engine=engine).run(vecs)
    n = vectors.n
    resolved = resolve_engine(engine, default_engine(), cycles=n,
                              sequential=bool(circuit.latches))
    if resolved == "reference" or not workers or workers <= 1 \
            or n < 2 * _MIN_SHARD:
        return EventSimulator(circuit, engine=resolved).run(vectors)
    shard_backend = "numpy" if resolved == "numpy" else None

    try:
        plan = compile_timed(circuit)
        in_words, _ = fastsim._pack_inputs(circuit, vectors)
    except (CompileError, KeyError):
        return EventSimulator(circuit, engine=resolved).run(vectors)

    with obs.span("fasttimer.sharded", circuit=circuit.name,
                  workers=workers) as sp:
        func = plan.func
        nets = func.nets
        reset_state = {l.output: l.init for l in circuit.latches}
        reset_values = evaluate(
            circuit, {name: 0 for name in circuit.inputs}, reset_state)

        # One cheap functional pass gives every shard its boundary
        # conditions: the settled values just before its first lane
        # and the latch state entering it.
        settled = _settled_words(func, in_words, n, reset_state)

        n_shards = min(workers, max(1, n // _MIN_SHARD))
        bounds = [round(k * n / n_shards) for k in range(n_shards + 1)]
        jobs = []
        for k in range(n_shards):
            lo, hi = bounds[k], bounds[k + 1]
            if lo == 0:
                prev, st = reset_values, reset_state
            else:
                prev = {net: (settled[i] >> (lo - 1)) & 1
                        for i, net in enumerate(nets)}
                st = {}
                for lp, latch in zip(func.latches, circuit.latches):
                    if lp.enable_slot >= 0 \
                            and not (settled[lp.enable_slot]
                                     >> (lo - 1)) & 1:
                        st[latch.output] = (settled[lp.out_slot]
                                            >> (lo - 1)) & 1
                    else:
                        st[latch.output] = (settled[lp.data_slot]
                                            >> (lo - 1)) & 1
            jobs.append((circuit, _shard_slice(vectors, lo, hi),
                         prev, st, lo == 0, shard_backend))

        import concurrent.futures
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=n_shards) as pool:
            parts = list(pool.map(_timed_batch_star, jobs))

        toggles = {net: 0 for net in nets}
        ones = {net: 0 for net in nets}
        events = 0
        glitches = 0
        edges = 0
        for k, part in enumerate(parts):
            for net, t in part.toggles.items():
                if t:
                    toggles[net] += t
            for net, o in part.ones.items():
                if o:
                    ones[net] += o
            events += part.events
            glitches += part.glitches
            edges += part.latch_edges_lo
            if k + 1 < len(parts):
                # The shard's last cycle is interior to the full run,
                # so its pending clock edge is committed.
                edges += part.latch_edges_last

        caps = circuit.load_capacitances()
        switched = sum(caps[net] * t for net, t in toggles.items() if t)
        clock_cap = 0.0
        if circuit.latches and n > 1:
            clock_cap = 2.0 * gatelib.DFF_CLOCK_CAP * edges
        sp.add("lanes", n)
        sp.set("shards", n_shards)
    return ActivityReport(
        cycles=n,
        toggles=toggles,
        ones=ones,
        switched_capacitance=switched,
        clock_capacitance=clock_cap,
        events=events,
        glitches=glitches,
    )


def timed_activity_cached(circuit: Circuit, vectors: Stimulus,
                          workers: Optional[int] = None,
                          engine: Optional[str] = None):
    """Memoized :func:`timed_activity` (whole-run granularity).

    Timed reports cannot be spliced per cone the way zero-delay
    activity can — glitch waveforms on a dirty region's boundary nets
    are not recoverable from settled lanes — so the incremental story
    for the timed engine is run-level memoization: results are stored
    in the shared :class:`~repro.store.ArtifactStore` (kind
    ``"activity"``, schema ``repro.activity/1``) keyed by circuit
    fingerprint, stimulus fingerprint, resolved engine, and batch
    length.  Optimization sweeps that re-evaluate structurally
    identical candidates (retiming's plain-vs-smart cuts, repeated
    probes of one pipeline level) hit instead of resimulating; a
    corrupt or wrong-schema entry degrades to a plain rerun.  Every
    hit returns a *fresh* report (callers mutate reports in place).
    ``workers`` affects only how a miss is computed — the report is
    bit-identical either way, so it is not part of the key.
    """
    from repro.logic.simulate import ActivityReport

    if not isinstance(vectors, PackedVectors):
        try:
            vectors = PackedVectors.from_vectors(circuit.inputs,
                                                 list(vectors))
        except KeyError:
            return timed_activity(circuit, vectors, workers=workers,
                                  engine=engine)
    n = vectors.n
    resolved = resolve_engine(engine, default_engine(), cycles=n,
                              sequential=bool(circuit.latches))
    key = artifact_store.activity_key(
        circuit.fingerprint(), fastsim.stimulus_fingerprint(vectors),
        f"timed/{resolved}", n)
    st = artifact_store.get_store()
    decoded = artifact_store.unpack_activity(
        st.get(key, artifact_store.ACTIVITY_KIND))
    if decoded is not None and decoded["cycles"] == n \
            and set(decoded["nets"]) == set(circuit.nets):
        if obs.enabled():
            obs.inc("fasttimer.run_memo_hits")
        return ActivityReport(
            cycles=n,
            toggles=dict(decoded["toggles"]),
            ones=dict(decoded["ones"]),
            switched_capacitance=decoded["switched"],
            clock_capacitance=decoded["clock"],
            events=decoded["events"],
            glitches=decoded["glitches"],
        )
    report = timed_activity(circuit, vectors, workers=workers,
                            engine=resolved)
    st.put(key, artifact_store.ACTIVITY_KIND, artifact_store.pack_activity(
        report.cycles, circuit.nets, report.toggles, report.ones,
        report.switched_capacitance, report.clock_capacitance,
        events=report.events, glitches=report.glitches))
    return report
