"""Event-driven gate-level simulation with glitch accounting.

The zero-delay simulator of :mod:`repro.logic.simulate` counts at most
one transition per net per cycle.  Real CMOS logic glitches: unequal
path delays make gate outputs toggle several times before settling.
Glitching is central to the low-power retiming study (Section III-J,
[111]) and to the gap between functional and "real delay" power
estimates ([28]).

Timing model (pinned, engine-independent)
-----------------------------------------

Gate transport delays from the cell library are discretized onto an
integer *tick* grid: the tick quantum is the exact rational GCD of the
delays present in the circuit (the library's delays are all multiples
of 0.2, so discretization is lossless), and every gate delay becomes
an integer number of ticks.  Within a tick, semantics are two-phase:

1. all value changes arriving at the tick are applied simultaneously,
2. every gate with a changed fan-in is evaluated *once* against the
   updated values and schedules its new output ``delay_ticks`` later
   (zero-delay cells propagate within the tick, in topological order).

Pulses wider than one tick are propagated (transport-delay
semantics), which over-counts glitches relative to an inertial model;
the over-count is conservative and uniform across compared circuits,
so relative results are preserved.  Compared to event-at-a-time float
timestamps, the tick grid merges arrivals that are simultaneous *by
construction* (equal path-delay sums) instead of splitting them on
floating-point rounding, so no zero-width phantom pulses are counted.

Normalization (pinned, matches :class:`ActivityReport`'s convention):
the first cycle after :meth:`EventSimulator.reset` only establishes
initial values — ``ones`` and ``cycles`` count it (value statistics
cover all settled states, exactly like the zero-delay engine's
``ones``), while ``toggles``/``glitches``/switched capacitance do not
(transition statistics cover the ``cycles - 1`` boundaries).
``events`` counts every applied value change including settling.
Clock-tree accounting follows the zero-delay engine: the edge between
cycles ``k`` and ``k+1`` is gated by the enable settled in cycle ``k``
and edges are counted for ``k = 0 .. cycles-2``.

Three engines back :meth:`EventSimulator.run`:

- the *reference* engine in this module: one event at a time through
  per-gate dict traffic — simple and obviously correct,
- the *fast* engine in :mod:`repro.logic.fasttimer`: a compiled
  tick-wheel evaluator that packs N cycles bit-parallel per
  (net, tick) and counts with popcounts,
- the *numpy* engine: the same tick-wheel schedule on ``uint64``
  lane-array words (:mod:`repro.backend.lanes`).

Reports are bit-identical across all three; the compiled engines fall
down the chain (numpy to fast when numpy is unavailable, both to the
reference when the circuit cannot be compiled).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro import store as artifact_store
from repro.backend.core import BackendUnavailable, ENGINES, \
    default_engine, resolve_engine
from repro.logic.netlist import Circuit, Gate, Latch
from repro.logic.simulate import ActivityReport, Vector

#: Engine used when ``EventSimulator`` is built without ``engine=``
#: ("fast", or the value of ``REPRO_ENGINE`` when set and valid).
DEFAULT_TIMED_ENGINE = default_engine()


# ----------------------------------------------------------------------
# Tick discretization (shared by both engines)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TickGrid:
    """Integer-tick discretization of a circuit's transport delays.

    ``quantum`` is the exact rational GCD of the gate delays present
    (1 when the circuit has no delayed gates); ``ticks`` maps every
    gate output net to its transport delay in ticks.
    """

    quantum: Fraction
    ticks: Dict[str, int]


def _rational(delay: float) -> Fraction:
    """Snap a float delay to the rational grid (library delays are
    short decimals; ``limit_denominator`` recovers them exactly)."""
    return Fraction(delay).limit_denominator(10 ** 6)


#: Artifact kind under which tick grids land in :mod:`repro.store`.
STORE_KIND = "tickgrid"


def _rehydrate_grid(circuit: Circuit,
                    payload: Dict[str, object]) -> Optional[TickGrid]:
    """Rebuild a tick grid from a store payload, or ``None``."""
    try:
        ticks = payload["ticks"]
        num, den = payload["quantum"]
        if set(ticks) != {g.output for g in circuit.gates}:
            return None
        return TickGrid(Fraction(int(num), int(den)),
                        {net: int(t) for net, t in ticks.items()})
    except Exception:
        return None


def tick_grid(circuit: Circuit) -> TickGrid:
    """Discretize ``circuit``'s gate delays onto the tick grid.

    Cached on the circuit object and in the content-addressed
    artifact store (the grid rides along with the compiled timed plan
    across process boundaries).
    """
    cached = getattr(circuit, "_tick_grid", None)
    version = getattr(circuit, "_version", 0)
    if cached is not None and cached[0] == version:
        return cached[1]
    st = artifact_store.get_store()
    fp = circuit.fingerprint()
    payload = st.get(fp, STORE_KIND)
    if payload is not None:
        grid = _rehydrate_grid(circuit, payload)
        if grid is not None:
            circuit._tick_grid = (version, grid)
            return grid
    fracs = [_rational(g.spec.delay) for g in circuit.gates]
    quantum = Fraction(1)
    nonzero = [f for f in fracs if f]
    if nonzero:
        quantum = nonzero[0]
        for f in nonzero[1:]:
            quantum = Fraction(
                math.gcd(quantum.numerator * f.denominator,
                         f.numerator * quantum.denominator),
                quantum.denominator * f.denominator)
    ticks = {g.output: int(f / quantum)
             for g, f in zip(circuit.gates, fracs)}
    grid = TickGrid(quantum, ticks)
    st.put(fp, STORE_KIND, {
        "quantum": [quantum.numerator, quantum.denominator],
        "ticks": ticks,
    })
    circuit._tick_grid = (version, grid)
    return grid


Stimulus = Union[Sequence[Vector], "object"]   # list of dicts | PackedVectors


class EventSimulator:
    """Cycle-based event-driven simulator for a circuit.

    ``engine`` selects the implementation backing :meth:`run`:
    ``"fast"`` (compiled tick-wheel on bignum words; the default),
    ``"numpy"`` (the same tick-wheel on lane arrays), ``"reference"``
    (scalar, event at a time) or ``"auto"`` (picks per batch shape).
    All produce bit-identical counters; the compiled engines fall back
    down the chain automatically when numpy is unavailable or the
    circuit cannot be compiled.  :meth:`step` always runs the scalar
    reference (it is the single-cycle debugging API).
    """

    def __init__(self, circuit: Circuit,
                 engine: Optional[str] = None) -> None:
        self.engine = engine or DEFAULT_TIMED_ENGINE
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             "expected 'fast', 'numpy', 'reference' "
                             "or 'auto'")
        self.circuit = circuit
        self._fanout = circuit.fanout_map()
        self._caps = circuit.load_capacitances()
        self._grid = tick_grid(circuit)
        self._topo_index = {g.output: i for i, g in
                            enumerate(circuit.topological_gates())}
        self._gate_of = {g.output: g for g in circuit.gates}
        self._values: Dict[str, int] = {}
        self._state = {l.output: l.init for l in circuit.latches}
        self.reset()

    def reset(self) -> None:
        from repro.logic.simulate import evaluate

        self._state = {l.output: l.init for l in self.circuit.latches}
        # Settle the circuit with all primary inputs at 0 so that gate
        # outputs start from consistent values (a NAND of zeros is 1).
        self._values = evaluate(
            self.circuit, {n: 0 for n in self.circuit.inputs}, self._state)
        self.toggles: Dict[str, int] = {n: 0 for n in self.circuit.nets}
        self.ones: Dict[str, int] = {n: 0 for n in self.circuit.nets}
        self.cycles = 0
        #: Applied (value-changing) events since reset, including the
        #: settling of the initial cycle.
        self.events = 0
        #: Transitions beyond each net's settled change per cycle —
        #: the simulator's own glitch tally (transport-delay model).
        self.glitches = 0
        self._settled_once = False
        self._clocked_latch_cycles = 0
        # Enabled clocked-latch count of the most recent settled cycle;
        # folded into _clocked_latch_cycles once the *next* cycle
        # proves the clock edge exists (zero-delay convention: edges
        # are gated by the enable of the cycle they terminate).
        self._last_enabled = 0

    @property
    def switched_capacitance(self) -> float:
        """Capacitance switched by counted transitions since reset.

        Derived from the integer toggle counters with one
        multiply-accumulate per net (in ``circuit.nets`` order) so
        both engines produce the identical float.
        """
        caps = self._caps
        return sum(caps[net] * t for net, t in self.toggles.items() if t)

    # ------------------------------------------------------------------
    def run(self, vectors: Stimulus) -> ActivityReport:
        from repro.logic import gates as gatelib

        with obs.span("eventsim.run", circuit=self.circuit.name,
                      engine=self.engine) as sp:
            events_before = self.events
            glitches_before = self.glitches
            engine = resolve_engine(
                self.engine, cycles=len(vectors),
                sequential=bool(self.circuit.latches))
            if engine != "reference":
                from repro.logic import fasttimer
                try:
                    self._run_fast(
                        vectors,
                        backend="numpy" if engine == "numpy" else None)
                except (fasttimer.CompileError, BackendUnavailable):
                    self._run_reference(vectors)
            else:
                self._run_reference(vectors)
            clock_cap = 0.0
            if self.circuit.latches and self.cycles > 1:
                clock_cap = (2.0 * gatelib.DFF_CLOCK_CAP
                             * self._clocked_latch_cycles)
            sp.add("cycles", len(vectors))
            sp.add("events", self.events - events_before)
            sp.add("glitches", self.glitches - glitches_before)
        if obs.enabled():
            obs.inc("eventsim.events", self.events - events_before)
            obs.inc("eventsim.glitches", self.glitches - glitches_before)
        return ActivityReport(
            cycles=self.cycles,
            toggles=dict(self.toggles),
            ones=dict(self.ones),
            switched_capacitance=self.switched_capacitance,
            clock_capacitance=clock_cap,
            events=self.events,
            glitches=self.glitches,
        )

    def _run_reference(self, vectors: Stimulus) -> None:
        from repro.logic import fastsim

        if isinstance(vectors, fastsim.PackedVectors):
            vectors = vectors.to_vectors()
        for vec in vectors:
            self.step(vec)

    def _run_fast(self, vectors: Stimulus,
                  backend: Optional[str] = None) -> None:
        """Run a whole batch through the compiled tick-wheel engine."""
        from repro.logic import fasttimer

        counts = fasttimer.timed_batch(
            self.circuit, vectors,
            prev_values=self._values, state=self._state,
            settling_first=not self._settled_once,
            backend=backend)
        if counts.n == 0:
            return
        for net, t in counts.toggles.items():
            if t:
                self.toggles[net] += t
        for net, o in counts.ones.items():
            if o:
                self.ones[net] += o
        self.events += counts.events
        self.glitches += counts.glitches
        if self.cycles >= 1:
            self._clocked_latch_cycles += self._last_enabled
        self._clocked_latch_cycles += counts.latch_edges_lo
        self._last_enabled = counts.latch_edges_last
        self.cycles += counts.n
        self._values = counts.final_values
        self._state = counts.final_state
        self._settled_once = True

    # ------------------------------------------------------------------
    def step(self, inputs: Vector) -> Dict[str, int]:
        """Apply one input vector + clock edge; settle all events.

        Returns the settled net values.  Transitions (including
        glitches) are accumulated into the activity counters, except
        during the very first cycle which only establishes initial
        values (``ones``/``cycles``/``events`` still count it — the
        pinned normalization in the module docstring).
        """
        count_transitions = self._settled_once
        if self.cycles >= 1:
            self._clocked_latch_cycles += self._last_enabled
        values = self._values
        fanout = self._fanout
        dticks = self._grid.ticks
        topo_index = self._topo_index
        gate_of = self._gate_of

        # tick -> {net: scheduled value}; one writer per (net, tick)
        # since each net has a single driver evaluated once per tick.
        pending: Dict[int, Dict[str, int]] = {}

        step_first: Dict[str, int] = {}    # value at cycle start
        step_counts: Dict[str, int] = {}   # transitions this cycle

        def apply(net: str, value: int) -> bool:
            if values[net] == value:
                return False
            if count_transitions:
                self.toggles[net] += 1
                if net in step_counts:
                    step_counts[net] += 1
                else:
                    step_first[net] = values[net]
                    step_counts[net] = 1
            values[net] = value
            self.events += 1
            return True

        # Clock edge: latch outputs take the previously sampled values;
        # primary inputs change simultaneously at tick 0.
        roots: Dict[str, int] = {}
        for name, value in inputs.items():
            if values.get(name) != value:
                roots[name] = value
        for latch in self.circuit.latches:
            if values[latch.output] != self._state[latch.output]:
                roots[latch.output] = self._state[latch.output]
        if roots:
            pending[0] = roots

        while pending:
            tick = min(pending)
            changed = [net for net, value in pending.pop(tick).items()
                       if apply(net, value)]
            # Phase 2: evaluate each affected gate once against the
            # fully-updated values; zero-delay cells propagate within
            # the tick in topological order (a heap keyed by the
            # cached topological index).
            heap: List[Tuple[int, str]] = []
            queued = set()
            for net in changed:
                for consumer, _pin in fanout.get(net, []):
                    if isinstance(consumer, Gate) \
                            and consumer.output not in queued:
                        queued.add(consumer.output)
                        heapq.heappush(
                            heap, (topo_index[consumer.output],
                                   consumer.output))
            evaluated = set()
            while heap:
                _i, out = heapq.heappop(heap)
                if out in evaluated:
                    continue
                evaluated.add(out)
                gate = gate_of[out]
                new = gate.spec.evaluate([values[n] for n in gate.inputs])
                d = dticks[out]
                if d == 0:
                    if apply(out, new):
                        for consumer, _pin in fanout.get(out, []):
                            if isinstance(consumer, Gate) \
                                    and consumer.output not in evaluated:
                                heapq.heappush(
                                    heap, (topo_index[consumer.output],
                                           consumer.output))
                else:
                    pending.setdefault(tick + d, {})[out] = new

        # Sample next state at the end of the settled cycle;
        # load-enable latches hold (and their clock stays gated).
        new_state: Dict[str, int] = {}
        enabled = 0
        for l in self.circuit.latches:
            if l.enable is not None and not values[l.enable]:
                new_state[l.output] = values[l.output]
            else:
                new_state[l.output] = values[l.data]
            if l.clocked and (l.enable is None or values[l.enable]):
                enabled += 1
        self._state = new_state
        self._last_enabled = enabled
        self.cycles += 1
        for net in self.ones:
            if values[net]:
                self.ones[net] += 1
        for net, count in step_counts.items():
            settled = 1 if values[net] != step_first[net] else 0
            self.glitches += count - settled
        self._settled_once = True
        return dict(values)

    # ------------------------------------------------------------------
    def glitch_report(self, vectors: Stimulus) -> Dict[str, float]:
        """Per-net glitch activity: event-driven minus zero-delay toggles.

        Runs both simulators — each on its engine-matched fast path —
        and returns toggles/cycle attributable to glitching for every
        net (always >= 0).
        """
        from repro.logic.simulate import collect_activity

        self.reset()
        timed = self.run(vectors)
        functional = collect_activity(self.circuit, vectors,
                                      engine=self.engine)
        report: Dict[str, float] = {}
        for net in self.circuit.nets:
            report[net] = max(
                0.0, timed.activity(net) - functional.activity(net))
        return report
