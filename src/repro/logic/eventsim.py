"""Event-driven gate-level simulation with glitch accounting.

The zero-delay simulator of :mod:`repro.logic.simulate` counts at most
one transition per net per cycle.  Real CMOS logic glitches: unequal
path delays make gate outputs toggle several times before settling.
Glitching is central to the low-power retiming study (Section III-J,
[111]) and to the gap between functional and "real delay" power
estimates ([28]).

This simulator uses per-gate transport delays from the cell library.
Pulses shorter than a gate's inertial delay are still propagated
(transport-delay semantics), which slightly over-counts glitches
relative to an inertial model; the over-count is conservative and
uniform across compared circuits, so relative results are preserved.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.logic.netlist import Circuit, Gate, Latch
from repro.logic.simulate import ActivityReport, Vector


class EventSimulator:
    """Cycle-based event-driven simulator for a circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self._fanout = circuit.fanout_map()
        self._caps = circuit.load_capacitances()
        self._values: Dict[str, int] = {}
        self._state = {l.output: l.init for l in circuit.latches}
        self._counter = itertools.count()
        self.reset()

    def reset(self) -> None:
        from repro.logic.simulate import evaluate

        self._state = {l.output: l.init for l in self.circuit.latches}
        # Settle the circuit with all primary inputs at 0 so that gate
        # outputs start from consistent values (a NAND of zeros is 1).
        self._values = evaluate(
            self.circuit, {n: 0 for n in self.circuit.inputs}, self._state)
        self.toggles: Dict[str, int] = {n: 0 for n in self.circuit.nets}
        self.ones: Dict[str, int] = {n: 0 for n in self.circuit.nets}
        self.switched_capacitance = 0.0
        self.cycles = 0
        #: Applied (value-changing) events since reset, including the
        #: settling of the initial cycle.
        self.events = 0
        #: Transitions beyond each net's settled change per cycle —
        #: the simulator's own glitch tally (transport-delay model).
        self.glitches = 0
        self._settled_once = False
        self._clocked_latch_cycles = 0

    # ------------------------------------------------------------------
    def run(self, vectors: Sequence[Vector]) -> ActivityReport:
        from repro.logic import gates as gatelib

        with obs.span("eventsim.run", circuit=self.circuit.name) as sp:
            events_before = self.events
            glitches_before = self.glitches
            for vec in vectors:
                self.step(vec)
            clock_cap = 0.0
            if self.circuit.latches and self.cycles > 1:
                clock_cap = (2.0 * gatelib.DFF_CLOCK_CAP
                             * self._clocked_latch_cycles)
            sp.add("cycles", len(vectors))
            sp.add("events", self.events - events_before)
            sp.add("glitches", self.glitches - glitches_before)
        if obs.enabled():
            obs.inc("eventsim.events", self.events - events_before)
            obs.inc("eventsim.glitches", self.glitches - glitches_before)
        return ActivityReport(
            cycles=self.cycles,
            toggles=dict(self.toggles),
            ones=dict(self.ones),
            switched_capacitance=self.switched_capacitance,
            clock_capacitance=clock_cap,
        )

    def step(self, inputs: Vector) -> Dict[str, int]:
        """Apply one input vector + clock edge; settle all events.

        Returns the settled net values.  Transitions (including
        glitches) are accumulated into the activity counters, except
        during the very first cycle which only establishes initial
        values.
        """
        count_transitions = self._settled_once
        queue: List[Tuple[float, int, str, int]] = []

        def schedule(time: float, net: str, value: int) -> None:
            heapq.heappush(queue, (time, next(self._counter), net, value))

        # Clock edge: latch outputs take the previously sampled values;
        # primary inputs change simultaneously at t=0.
        for name, value in inputs.items():
            if self._values.get(name) != value:
                schedule(0.0, name, value)
        for latch in self.circuit.latches:
            if self._values[latch.output] != self._state[latch.output]:
                schedule(0.0, latch.output, self._state[latch.output])

        step_first: Dict[str, int] = {}    # value at cycle start
        step_counts: Dict[str, int] = {}   # transitions this cycle
        while queue:
            time, _seq, net, value = heapq.heappop(queue)
            if self._values[net] == value:
                continue
            if count_transitions:
                self.toggles[net] += 1
                self.switched_capacitance += self._caps[net]
                if net in step_counts:
                    step_counts[net] += 1
                else:
                    step_first[net] = self._values[net]
                    step_counts[net] = 1
            self._values[net] = value
            self.events += 1
            for consumer, _pin in self._fanout.get(net, []):
                if isinstance(consumer, Gate):
                    new = consumer.spec.evaluate(
                        [self._values[n] for n in consumer.inputs])
                    schedule(time + consumer.spec.delay, consumer.output, new)
                # Latches and primary outputs do not propagate events
                # within a cycle.

        # Sample next state at the end of the settled cycle;
        # load-enable latches hold (and their clock stays gated).
        new_state: Dict[str, int] = {}
        for l in self.circuit.latches:
            if l.enable is not None and not self._values[l.enable]:
                new_state[l.output] = self._values[l.output]
            else:
                new_state[l.output] = self._values[l.data]
                if count_transitions and l.clocked:
                    self._clocked_latch_cycles += 1
        self._state = new_state
        self.cycles += 1
        for net in self.ones:
            if self._values[net]:
                self.ones[net] += 1
        for net, count in step_counts.items():
            settled = 1 if self._values[net] != step_first[net] else 0
            self.glitches += count - settled
        self._settled_once = True
        return dict(self._values)

    # ------------------------------------------------------------------
    def glitch_report(self, vectors: Sequence[Vector],
                      ) -> Dict[str, float]:
        """Per-net glitch activity: event-driven minus zero-delay toggles.

        Runs both simulators; returns toggles/cycle attributable to
        glitching for every net (always >= 0).
        """
        from repro.logic.simulate import collect_activity

        self.reset()
        timed = self.run(vectors)
        functional = collect_activity(self.circuit, vectors)
        report: Dict[str, float] = {}
        for net in self.circuit.nets:
            report[net] = max(
                0.0, timed.activity(net) - functional.activity(net))
        return report
