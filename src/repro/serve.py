"""repro.serve — the long-running power-estimation service.

``python -m repro serve`` stands up an HTTP server (stdlib
``http.server``, threading front end) over a **persistent warm worker
pool** of processes that share the content-addressed plan store
(:mod:`repro.store`).  The serving economics are the whole point:
compiling a circuit's simulation plans costs orders of magnitude more
than evaluating a batch of cycles, so a service that keeps workers
alive and plans content-addressed pays the mapping cost once per
*structure* — every later request for the same circuit, from any
client, rehydrates in microseconds.  This is the repo's analogue of
power emulation's "pay the FPGA mapping once, then stream
evaluations", and the prerequisite for cheap thousand-run
characterization loops.

Protocol (JSON over HTTP; responses to ``/estimate`` stream as
NDJSON, one line per completed job, completion order):

- ``GET  /healthz``   liveness + pool shape
- ``GET  /stats``     job counters, latency percentiles, store stats
- ``GET  /telemetry`` the full :mod:`repro.obs` export
- ``POST /estimate``  ``{"jobs": [JOB, ...]}``
- ``POST /shutdown``  graceful stop

A JOB is::

    {"circuit":   {"generator": "ripple_carry_adder",
                   "params": {"width": 8}}         # or {"netlist": ...}
                                                   # or {"blif": "..."}
     "technique": "simulation" | "event-driven" | "probabilistic"
                  | "monte-carlo" | "entropy" | "learned",
     "engine":    "fast" | "numpy" | "reference" | "auto",   # optional
     "cycles":    256,            # stimulus length (simulation-backed)
     "seed":      1,              # stimulus seed
     "shards":    1,              # split across the pool, merge results
     "vdd": 1.0, "freq": 1.0,    # optional electrical scaling
     "id":        "anything"}     # echoed back; default: batch index

Batching and sharding: every request's jobs fan out over the pool
concurrently; a job with ``shards > 1`` is additionally split into
independent stimulus shards (distinct seeds, cycles divided) whose
estimates merge as a cycle-weighted mean — the classic
variance-reduction layout for Monte-Carlo-style power estimation.

Each job result reports the worker's plan-store traffic
(``store_hits``/``store_misses``) so clients and the load-generator
bench can observe warm-start behavior directly.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro import store as artifact_store
from repro.util import seeding

__all__ = ["EstimationServer", "Client", "run_job", "main",
           "TECHNIQUES", "GENERATORS", "SEARCH_STREAMS"]

#: Techniques a job may request (the gate/entropy subset of
#: :class:`repro.core.estimator.PowerEstimator` — the ones that take a
#: netlist + optional stimulus — plus the batch candidate-search
#: front-end over :mod:`repro.optimization.search`).
TECHNIQUES = ("simulation", "event-driven", "probabilistic",
              "monte-carlo", "entropy", "learned", "search")

#: Address-stream generators a "search" job's bus survey may name
#: (allowlist, same rationale as :data:`GENERATORS`).
SEARCH_STREAMS = ("random", "sequential", "interleaved", "correlated")

#: Circuit generators a job may name (allowlist; arbitrary callables
#: never cross the wire).
GENERATORS = (
    "ripple_carry_adder", "carry_lookahead_adder", "array_multiplier",
    "equality_comparator", "magnitude_comparator", "parity_tree",
    "random_logic", "counter", "shift_register", "chained_adder_tree",
)

#: Hard cap on jobs per request (a runaway client should get an
#: error, not an OOM).
MAX_BATCH = 10_000

#: Stimulus length cap per job (packed words grow with cycles).
MAX_CYCLES = 1 << 22

#: Latency samples kept for the /stats percentiles.
_LATENCY_WINDOW = 20_000


# ----------------------------------------------------------------------
# Job execution (worker side)
# ----------------------------------------------------------------------
def _build_circuit(spec: Dict[str, Any]):
    from repro.logic import generators as genlib
    from repro.logic.blif import read_blif
    from repro.logic.netlist import Circuit

    if not isinstance(spec, dict):
        raise ValueError("circuit spec must be an object")
    if "generator" in spec:
        name = spec["generator"]
        if name not in GENERATORS:
            raise ValueError(f"unknown generator {name!r}")
        params = spec.get("params", {})
        if not isinstance(params, dict):
            raise ValueError("generator params must be an object")
        return getattr(genlib, name)(**params)
    if "netlist" in spec:
        return Circuit.from_dict(spec["netlist"])
    if "blif" in spec:
        return read_blif(io.StringIO(spec["blif"]))
    raise ValueError(
        "circuit spec needs one of generator/netlist/blif")


def _run_search(job: Dict[str, Any], cycles: int, seed,
                engine) -> Dict[str, Any]:
    """Execute one batch candidate-search job (technique "search").

    Two allowlisted kinds: ``bus-survey`` fans every implemented bus
    code over one address stream (:func:`survey_codes`), ``guarded``
    measures the top-k guard candidates of a circuit
    (:func:`evaluate_guarded`).  ``spec["workers"]`` sets the search
    pool's width *inside* this job; the default (serial) is right for
    batches, whose parallelism already comes from the serve pool.
    """
    from repro.logic import fastsim
    from repro.optimization import bus_encoding
    from repro.optimization import search
    from repro.optimization.guarded_eval import evaluate_guarded

    spec = job.get("search", {})
    if not isinstance(spec, dict):
        raise ValueError("search spec must be an object")
    kind = spec.get("kind", "bus-survey")
    workers = spec.get("workers")

    if kind == "bus-survey":
        width = int(spec.get("width", 12))
        if not 1 <= width <= 32:
            raise ValueError(f"bus width out of range: {width}")
        stream_name = spec.get("stream", "random")
        if stream_name not in SEARCH_STREAMS:
            raise ValueError(f"unknown stream {stream_name!r}")
        base_seed = 0 if seed is None else int(seed)
        if stream_name == "sequential":
            stream = bus_encoding.sequential_addresses(width, cycles)
        elif stream_name == "interleaved":
            stream = bus_encoding.interleaved_array_addresses(
                width, cycles)
        elif stream_name == "correlated":
            stream = bus_encoding.correlated_block_addresses(
                width, cycles, seed=base_seed)
        else:
            stream = bus_encoding.random_addresses(width, cycles,
                                                   seed=base_seed)
        reports = bus_encoding.survey_codes(stream, engine=engine,
                                            workers=workers)
        best = min(reports, key=lambda r: (r.transitions, r.code))
        return {
            "kind": kind,
            "workers": search.resolve_workers(workers),
            "results": [{"code": r.code,
                         "transitions": r.transitions,
                         "per_cycle": r.per_cycle,
                         "lines": r.lines} for r in reports],
            "best": best.code,
            "power": best.per_cycle,
        }

    if kind == "guarded":
        circuit = _build_circuit(job.get("circuit", {}))
        vectors = fastsim.random_packed_vectors(
            circuit.inputs, cycles, seed=seed)
        if engine == "reference":
            vectors = vectors.to_vectors()
        top_k = max(1, int(spec.get("top_k", 3)))
        report = evaluate_guarded(circuit, vectors, top_k=top_k,
                                  engine=engine, workers=workers)
        payload: Dict[str, Any] = {
            "kind": kind,
            "workers": search.resolve_workers(workers),
            "fingerprint": circuit.fingerprint(),
        }
        if report is None:
            payload.update(results=[], best=None, power=None)
            return payload
        payload.update(
            results=[{"guard": report.candidate.guard,
                      "guarded": report.candidate.guarded,
                      "cone_gates": report.candidate.cone_gates}],
            best=report.candidate.guard,
            power=report.guarded_power,
            original_power=report.original_power,
            saving=report.saving,
            equivalent=report.equivalent,
        )
        return payload

    raise ValueError(f"unknown search kind {kind!r}")


def run_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one estimation job; always returns a result dict.

    Runs in a pool worker.  Reports the worker's plan-store traffic
    delta alongside the estimate, so callers can see whether the
    plans were rehydrated (warm) or compiled (cold).  Never raises:
    failures come back as ``{"ok": false, "error": ...}``.
    """
    from repro.core import PowerEstimator
    from repro.logic import fastsim

    t0 = time.perf_counter()
    st = artifact_store.get_store()
    before = st.stats()
    try:
        technique = job.get("technique", "simulation")
        if technique not in TECHNIQUES:
            raise ValueError(f"unknown technique {technique!r}")
        cycles = int(job.get("cycles", 256))
        if not 1 <= cycles <= MAX_CYCLES:
            raise ValueError(f"cycles out of range: {cycles}")
        seed = job.get("seed")
        engine = job.get("engine")
        if technique == "search":
            payload = _run_search(job, cycles, seed, engine)
            after = st.stats()
            elapsed_ms = (time.perf_counter() - t0) * 1e3
            return {
                "ok": True,
                "technique": "search",
                "cycles": cycles,
                "elapsed_ms": round(elapsed_ms, 3),
                "store_hits": (after["mem_hits"] + after["disk_hits"]
                               - before["mem_hits"]
                               - before["disk_hits"]),
                "store_misses": after["misses"] - before["misses"],
                "pid": os.getpid(),
                **payload,
            }
        circuit = _build_circuit(job.get("circuit", {}))

        estimator = PowerEstimator(vdd=float(job.get("vdd", 1.0)),
                                   freq=float(job.get("freq", 1.0)))
        if technique in ("simulation", "event-driven", "learned"):
            # "learned" is simulation-backed too: the stimulus drives
            # the model's windowed features.  Fitted models come from
            # the shared artifact store, so the first worker to see a
            # structure pays the characterize+fit cost and every
            # later job (any worker, any process) rehydrates it.
            vectors = fastsim.random_packed_vectors(
                circuit.inputs, cycles, seed=seed)
            if engine == "reference":
                vectors = vectors.to_vectors()
            result = estimator.gate(circuit, vectors,
                                    technique=technique, engine=engine)
        elif technique == "entropy":
            vectors = fastsim.random_packed_vectors(
                circuit.inputs, cycles, seed=seed).to_vectors()
            result = estimator.entropic(circuit, vectors)
        else:                  # probabilistic / monte-carlo: no stimulus
            result = estimator.gate(circuit, technique=technique)

        after = st.stats()
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        return {
            "ok": True,
            "power": result.power,
            "technique": result.technique,
            "level": result.level,
            "cost": result.cost,
            "cycles": cycles,
            "fingerprint": circuit.fingerprint(),
            "elapsed_ms": round(elapsed_ms, 3),
            "store_hits": (after["mem_hits"] + after["disk_hits"]
                           - before["mem_hits"] - before["disk_hits"]),
            "store_misses": after["misses"] - before["misses"],
            "pid": os.getpid(),
        }
    except Exception as exc:
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_ms": round((time.perf_counter() - t0) * 1e3, 3),
            "pid": os.getpid(),
        }


def _shard_jobs(job: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Split one job into independent stimulus shards.

    Only simulation-backed techniques shard (the analytical ones have
    no stimulus to divide).  Shards draw distinct seeds so their
    estimates are statistically independent.
    """
    shards = int(job.get("shards", 1) or 1)
    technique = job.get("technique", "simulation")
    # "search" jobs are indivisible: their candidate fan-out happens
    # inside the job (the search pool), not across stimulus shards.
    if shards <= 1 or technique in ("probabilistic", "monte-carlo",
                                    "search"):
        return [job]
    cycles = int(job.get("cycles", 256))
    shards = max(1, min(shards, cycles))
    per = (cycles + shards - 1) // shards
    seed = job.get("seed")
    subs = []
    for k in range(shards):
        sub = dict(job)
        sub["cycles"] = min(per, cycles - k * per)
        # Spawn-key seeds: the one derivation scheme shared with the
        # learned characterization and the search pool
        # (repro.util.seeding), replacing the old ad-hoc +7919*k walk.
        sub["seed"] = None if seed is None \
            else seeding.child_seed(int(seed), k)
        sub.pop("shards", None)
        subs.append(sub)
    return subs


def _merge_shards(parts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Cycle-weighted merge of shard results into one job result."""
    if len(parts) == 1:
        return dict(parts[0])
    failed = [p for p in parts if not p.get("ok")]
    if failed:
        out = dict(failed[0])
        out["shards"] = len(parts)
        return out
    total_cycles = sum(p["cycles"] for p in parts)
    power = sum(p["power"] * p["cycles"] for p in parts) / total_cycles
    out = dict(parts[0])
    out.update({
        "power": power,
        "cycles": total_cycles,
        "cost": sum(p["cost"] for p in parts),
        "elapsed_ms": round(max(p["elapsed_ms"] for p in parts), 3),
        "store_hits": sum(p["store_hits"] for p in parts),
        "store_misses": sum(p["store_misses"] for p in parts),
        "shards": len(parts),
    })
    return out


def _init_worker(store_dir: Optional[str]) -> None:
    """Warm a pool worker: store config + imports off the hot path."""
    if store_dir:
        os.environ[artifact_store.ENV_DIR] = store_dir
        artifact_store.set_store(None)      # rebuild from env
    # Pre-import the heavy modules so the first job measures
    # estimation, not imports.
    import repro.core                     # noqa: F401
    import repro.logic.eventsim           # noqa: F401
    import repro.logic.fastsim            # noqa: F401
    import repro.logic.fasttimer          # noqa: F401
    import repro.logic.generators         # noqa: F401


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class EstimationServer:
    """HTTP estimation service over a persistent warm worker pool.

    ``store_dir=None`` (the default) uses ``REPRO_STORE`` when set
    and otherwise provisions a private temporary store directory, so
    the pool always shares a disk-backed plan store — that sharing is
    what makes the pool *warm* for repeated structures regardless of
    which worker a job lands on.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None,
                 store_dir: Optional[str] = None,
                 flush_interval_s: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self.workers = workers or max(2, min(8, os.cpu_count() or 2))
        self._store_dir = store_dir
        self._own_store_tmp: Optional[tempfile.TemporaryDirectory] = None
        self._flush_interval_s = flush_interval_s
        self._pool: Optional[ProcessPoolExecutor] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        self._counters = {"requests": 0, "jobs": 0, "jobs_failed": 0,
                          "batches": 0}
        self._lock = threading.Lock()
        self._started = time.time()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bring up store, pool, and listener; returns (host, port)."""
        store_dir = self._store_dir \
            or os.environ.get(artifact_store.ENV_DIR)
        if not store_dir:
            self._own_store_tmp = tempfile.TemporaryDirectory(
                prefix="repro-serve-store-")
            store_dir = self._own_store_tmp.name
        self._store_dir = store_dir
        artifact_store.configure(root=store_dir)

        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker, initargs=(store_dir,))
        # Touch every worker once so process spawn + imports happen
        # before the first request, not during it.
        list(self._pool.map(_warm_probe, range(self.workers)))

        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve",
            daemon=True)
        self._thread.start()
        if self._flush_interval_s:
            obs.start_periodic_export(self._flush_interval_s)
        obs.inc("serve.starts")
        return self.host, self.port

    def stop(self) -> None:
        """Graceful teardown: listener, pool, periodic export, store."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._flush_interval_s:
            obs.stop_periodic_export()
        if self._own_store_tmp is not None:
            self._own_store_tmp.cleanup()
            self._own_store_tmp = None

    def __enter__(self) -> "EstimationServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    # -- request handling ---------------------------------------------
    def run_batch(self, jobs: List[Dict[str, Any]], emit) -> Dict[str, Any]:
        """Fan a batch out over the pool; stream results via ``emit``.

        ``emit(result)`` is called once per job in completion order;
        the returned summary is for the trailing NDJSON line.  Jobs
        with ``shards > 1`` expand into sub-tasks and merge before
        emission.
        """
        assert self._pool is not None
        t0 = time.perf_counter()
        pending: Dict[Any, Tuple[int, List[Optional[Dict[str, Any]]]]] = {}
        job_ids: List[Any] = []
        remaining: Dict[int, int] = {}
        futures = {}
        for idx, job in enumerate(jobs):
            job_ids.append(job.get("id", idx))
            subs = _shard_jobs(job)
            remaining[idx] = len(subs)
            pending[idx] = (len(subs), [None] * len(subs))
            for k, sub in enumerate(subs):
                fut = self._pool.submit(run_job, sub)
                futures[fut] = (idx, k)

        ok = failed = 0
        hits = misses = 0
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for fut in done:
                idx, k = futures[fut]
                try:
                    result = fut.result()
                except Exception as exc:   # pool breakage, not job code
                    result = {"ok": False,
                              "error": f"{type(exc).__name__}: {exc}",
                              "elapsed_ms": 0.0}
                n_subs, parts = pending[idx]
                parts[k] = result
                remaining[idx] -= 1
                if remaining[idx]:
                    continue
                merged = _merge_shards([p for p in parts
                                        if p is not None])
                merged["id"] = job_ids[idx]
                if merged.get("ok"):
                    ok += 1
                else:
                    failed += 1
                hits += merged.get("store_hits", 0)
                misses += merged.get("store_misses", 0)
                with self._lock:
                    self._latencies.append(merged.get("elapsed_ms", 0.0))
                    self._counters["jobs"] += 1
                    if not merged.get("ok"):
                        self._counters["jobs_failed"] += 1
                emit(merged)

        wall_ms = (time.perf_counter() - t0) * 1e3
        with self._lock:
            self._counters["batches"] += 1
        obs.inc("serve.jobs", len(jobs))
        served = hits + misses
        return {
            "jobs": len(jobs),
            "ok": ok,
            "failed": failed,
            "wall_ms": round(wall_ms, 3),
            "throughput_jobs_s": round(len(jobs) / max(wall_ms / 1e3,
                                                       1e-9), 2),
            "store_hits": hits,
            "store_misses": misses,
            "store_hit_rate": round(hits / served, 4) if served else 0.0,
        }

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            lat = sorted(self._latencies)
        quantiles = {}
        if lat:
            def q(p: float) -> float:
                return lat[min(len(lat) - 1, int(p * len(lat)))]

            quantiles = {
                "count": len(lat),
                "p50_ms": round(q(0.50), 3),
                "p90_ms": round(q(0.90), 3),
                "p99_ms": round(q(0.99), 3),
                "max_ms": round(lat[-1], 3),
            }
        return {
            "pid": os.getpid(),
            "workers": self.workers,
            "uptime_s": round(time.time() - self._started, 3),
            "store_dir": self._store_dir,
            "counters": counters,
            "latency": quantiles,
            "store": artifact_store.get_store().stats(),
        }


def _warm_probe(_: int) -> int:
    """No-op submitted once per worker at startup to force spawn."""
    return os.getpid()


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
def _make_handler(server: EstimationServer):
    class Handler(BaseHTTPRequestHandler):
        # HTTP/1.0 + connection close per request: responses stream
        # without Content-Length and terminate unambiguously.
        protocol_version = "HTTP/1.0"

        def log_message(self, fmt, *args):   # quiet by default
            if os.environ.get("REPRO_SERVE_LOG"):
                sys.stderr.write("serve: " + fmt % args + "\n")

        # -- helpers ---------------------------------------------------
        def _json(self, status: int, payload: Dict[str, Any]) -> None:
            body = (json.dumps(payload) + "\n").encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_body(self) -> Optional[Dict[str, Any]]:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0:
                return {}
            raw = self.rfile.read(length)
            data = json.loads(raw.decode("utf-8"))
            if not isinstance(data, dict):
                raise ValueError("request body must be a JSON object")
            return data

        # -- routes ----------------------------------------------------
        def do_GET(self) -> None:
            with server._lock:
                server._counters["requests"] += 1
            if self.path == "/healthz":
                self._json(200, {"ok": True, "pid": os.getpid(),
                                 "workers": server.workers,
                                 "store_dir": server._store_dir})
            elif self.path == "/stats":
                self._json(200, server.stats())
            elif self.path == "/telemetry":
                self._json(200, obs.export_state())
            else:
                self._json(404, {"ok": False,
                                 "error": f"no route {self.path}"})

        def do_POST(self) -> None:
            with server._lock:
                server._counters["requests"] += 1
            if self.path == "/shutdown":
                self._json(200, {"ok": True, "stopping": True})
                # shutdown() must come from another thread — it joins
                # the serve_forever loop this handler runs inside.
                threading.Thread(target=server.stop,
                                 daemon=True).start()
                return
            if self.path != "/estimate":
                self._json(404, {"ok": False,
                                 "error": f"no route {self.path}"})
                return
            try:
                body = self._read_body()
                jobs = body.get("jobs")
                if not isinstance(jobs, list) or not jobs:
                    raise ValueError("body needs a non-empty jobs list")
                if len(jobs) > MAX_BATCH:
                    raise ValueError(
                        f"batch too large ({len(jobs)} > {MAX_BATCH})")
            except (ValueError, json.JSONDecodeError) as exc:
                self._json(400, {"ok": False, "error": str(exc)})
                return

            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.end_headers()

            write_lock = threading.Lock()

            def emit(result: Dict[str, Any]) -> None:
                line = (json.dumps(result) + "\n").encode()
                with write_lock:
                    self.wfile.write(line)
                    self.wfile.flush()

            try:
                summary = server.run_batch(jobs, emit)
                emit({"summary": summary})
            except BrokenPipeError:      # client went away mid-stream
                pass

    return Handler


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class Client:
    """Minimal stdlib client for the estimation service."""

    def __init__(self, host: str, port: int,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None
                 ) -> Tuple[int, List[Dict[str, Any]]]:
        conn = HTTPConnection(self.host, self.port,
                              timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None \
                else None
            headers = {"Content-Type": "application/json"} \
                if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            lines = []
            for raw in resp.read().splitlines():
                raw = raw.strip()
                if raw:
                    lines.append(json.loads(raw))
            return resp.status, lines
        finally:
            conn.close()

    def healthz(self) -> Dict[str, Any]:
        status, lines = self._request("GET", "/healthz")
        if status != 200 or not lines:
            raise RuntimeError(f"healthz failed: HTTP {status}")
        return lines[0]

    def stats(self) -> Dict[str, Any]:
        status, lines = self._request("GET", "/stats")
        if status != 200 or not lines:
            raise RuntimeError(f"stats failed: HTTP {status}")
        return lines[0]

    def telemetry(self) -> Dict[str, Any]:
        status, lines = self._request("GET", "/telemetry")
        if status != 200 or not lines:
            raise RuntimeError(f"telemetry failed: HTTP {status}")
        return lines[0]

    def estimate(self, jobs: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Submit a batch; returns ``{"results": [...], "summary"}``.

        Results come back in submission order (re-sorted from the
        completion-ordered NDJSON stream by their ``id``).
        """
        status, lines = self._request("POST", "/estimate",
                                      {"jobs": jobs})
        if status != 200:
            error = lines[0] if lines else {"error": f"HTTP {status}"}
            raise RuntimeError(f"estimate failed: {error}")
        summary: Dict[str, Any] = {}
        results: List[Dict[str, Any]] = []
        for line in lines:
            if "summary" in line:
                summary = line["summary"]
            else:
                results.append(line)
        order = {job.get("id", i): i for i, job in enumerate(jobs)}
        results.sort(key=lambda r: order.get(r.get("id"), 1 << 30))
        return {"results": results, "summary": summary}

    def shutdown(self) -> None:
        try:
            self._request("POST", "/shutdown")
        except OSError:
            pass                    # server can die mid-response


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _self_check(workers: int) -> int:
    """Start a private server, push two small batches, verify warmth.

    The CI smoke leg: asserts every job succeeds, that the repeated
    batch is served from the plan store (hits > 0), and that the
    stats endpoint reports latency percentiles.
    """
    jobs = [
        {"circuit": {"generator": "ripple_carry_adder",
                     "params": {"width": 8}},
         "technique": "simulation", "cycles": 256, "seed": 1},
        {"circuit": {"generator": "counter", "params": {"width": 6}},
         "technique": "event-driven", "cycles": 256, "seed": 2},
        {"circuit": {"generator": "parity_tree", "params": {"width": 8}},
         "technique": "probabilistic"},
        {"circuit": {"generator": "random_logic",
                     "params": {"n_inputs": 10, "n_gates": 60,
                                "n_outputs": 4, "seed": 5}},
         "technique": "simulation", "cycles": 512, "seed": 3,
         "shards": 2},
    ]
    with EstimationServer(workers=workers) as server:
        client = Client(*server.address)
        health = client.healthz()
        print(f"serve self-check: up at {server.host}:{server.port} "
              f"pid={health['pid']} workers={health['workers']}")
        first = client.estimate(jobs)
        second = client.estimate(jobs)
        stats = client.stats()

    def fail(msg: str) -> int:
        print(f"serve self-check: FAIL: {msg}", file=sys.stderr)
        return 1

    for label, batch in (("first", first), ("second", second)):
        bad = [r for r in batch["results"] if not r.get("ok")]
        if bad:
            return fail(f"{label} batch had failures: {bad}")
        if len(batch["results"]) != len(jobs):
            return fail(f"{label} batch returned "
                        f"{len(batch['results'])}/{len(jobs)} results")
    if second["summary"]["store_hits"] <= 0:
        return fail("repeated batch saw no plan-store hits "
                    f"(summary: {second['summary']})")
    if "p50_ms" not in stats["latency"]:
        return fail(f"stats missing latency percentiles: {stats}")
    print(f"serve self-check: OK  ({len(jobs)}+{len(jobs)} jobs, "
          f"second-batch store hits="
          f"{second['summary']['store_hits']}, "
          f"p50={stats['latency']['p50_ms']}ms "
          f"p99={stats['latency']['p99_ms']}ms, "
          f"store hit rate={stats['store']['hit_rate']})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the power-estimation HTTP service over a "
                    "persistent warm worker pool sharing the "
                    "content-addressed plan store.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8763,
                        help="listen port (0 = ephemeral; default 8763)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: min(8, cpus))")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="plan-store directory (default: "
                             "$REPRO_STORE, else a private temp dir)")
    parser.add_argument("--flush-interval", type=float, default=30.0,
                        help="periodic obs telemetry export interval "
                             "(seconds; needs REPRO_OBS_EXPORT)")
    parser.add_argument("--self-check", action="store_true",
                        help="start a private server, run a smoke "
                             "batch twice, verify store warmth, exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.self_check:
        return _self_check(args.workers or 2)
    server = EstimationServer(host=args.host, port=args.port,
                              workers=args.workers,
                              store_dir=args.store,
                              flush_interval_s=args.flush_interval)
    host, port = server.start()
    print(f"repro serve: listening on http://{host}:{port} "
          f"({server.workers} workers, store={server._store_dir})",
          flush=True)
    try:
        while server._thread is not None and server._thread.is_alive():
            server._thread.join(timeout=1.0)
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.stop()
    return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
