"""State minimization by partition refinement.

Implements the classical equivalence-class computation for completely
specified Mealy machines (the "restructuring" transformation of
Section III-H, cf. [88]): two states are equivalent iff they produce
the same output and transition to equivalent states for every input
minterm.  The STG is completed (self-loop, all-zero output) before
refinement, matching the simulation semantics of
:class:`repro.fsm.stg.STG`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fsm.stg import STG, Transition


def equivalence_classes(stg: STG) -> List[List[str]]:
    """Partition of the states into equivalence classes."""
    complete = stg.completed()
    minterms = list(range(1 << complete.n_inputs))

    # Resolve each state's behaviour per input minterm once.
    behaviour: Dict[str, List[Tuple[str, str]]] = {}
    for state in complete.states:
        behaviour[state] = [complete.step(state, m) for m in minterms]

    # Initial partition by output signature.
    def output_signature(state: str) -> Tuple[str, ...]:
        return tuple(out for _nxt, out in behaviour[state])

    block_of: Dict[str, int] = {}
    signatures: Dict[Tuple, int] = {}
    for state in complete.states:
        sig = output_signature(state)
        if sig not in signatures:
            signatures[sig] = len(signatures)
        block_of[state] = signatures[sig]

    # Refine until stable.
    while True:
        new_sigs: Dict[Tuple, int] = {}
        new_block: Dict[str, int] = {}
        for state in complete.states:
            sig = (block_of[state],
                   tuple(block_of[nxt] for nxt, _out in behaviour[state]))
            if sig not in new_sigs:
                new_sigs[sig] = len(new_sigs)
            new_block[state] = new_sigs[sig]
        if len(new_sigs) == len(set(block_of.values())):
            block_of = new_block
            break
        block_of = new_block

    classes: Dict[int, List[str]] = {}
    for state in complete.states:
        classes.setdefault(block_of[state], []).append(state)
    return list(classes.values())


def minimize_states(stg: STG) -> STG:
    """Return an equivalent machine with one state per class.

    Class representatives keep the name of their first member;
    transitions are taken from the representative and redirected to
    class representatives.
    """
    classes = equivalence_classes(stg)
    representative: Dict[str, str] = {}
    for members in classes:
        rep = members[0]
        for state in members:
            representative[state] = rep

    reduced = STG(f"{stg.name}_min", stg.n_inputs, stg.n_outputs)
    reps = {representative[s] for s in stg.states}
    # Preserve declaration order for stable encodings downstream.
    for state in stg.states:
        if state in reps:
            reduced.add_state(state)
    complete = stg.completed()
    for t in complete.transitions:
        if representative[t.src] != t.src:
            continue
        reduced.transitions.append(
            Transition(t.input_cube, t.src, representative[t.dst], t.output))
    if stg.reset_state is not None:
        reduced.reset_state = representative[stg.reset_state]
    return reduced
