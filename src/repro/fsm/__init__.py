"""Finite-state machines and state transition graphs.

Substrate for the controller-oriented parts of the survey:

- :mod:`repro.fsm.stg`       -- Mealy STG model and structural queries,
- :mod:`repro.fsm.kiss`      -- KISS2 parsing plus built-in benchmarks,
- :mod:`repro.fsm.markov`    -- steady-state/transition probabilities
  (the Markovian analysis of [96], exact and iterative),
- :mod:`repro.fsm.minimize`  -- state minimization by partition
  refinement (Section III-H "restructuring"),
- :mod:`repro.fsm.encoding`  -- low-power state assignment: hypercube
  embedding weighted by transition probabilities ([90]-[95]),
- :mod:`repro.fsm.synthesis` -- encoded STG to gate-level netlist,
- :mod:`repro.fsm.decompose` -- interacting-FSM decomposition with
  shutdown of the inactive submachine ([86], [87]).
"""

from repro.fsm.stg import STG, Transition
from repro.fsm.kiss import read_kiss, write_kiss, benchmark, benchmark_names
from repro.fsm.markov import stationary_distribution, transition_probabilities
from repro.fsm.encoding import (
    Encoding,
    binary_encoding,
    gray_encoding,
    one_hot_encoding,
    random_encoding,
    low_power_encoding,
    encoding_switching_cost,
)
from repro.fsm.minimize import minimize_states
from repro.fsm.synthesis import synthesize_fsm

__all__ = [
    "STG",
    "Transition",
    "read_kiss",
    "write_kiss",
    "benchmark",
    "benchmark_names",
    "stationary_distribution",
    "transition_probabilities",
    "Encoding",
    "binary_encoding",
    "gray_encoding",
    "one_hot_encoding",
    "random_encoding",
    "low_power_encoding",
    "encoding_switching_cost",
    "minimize_states",
    "synthesize_fsm",
]
