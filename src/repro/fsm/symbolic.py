"""Symbolic (BDD-based) sequential analysis (Section III-H).

For controllers too large to enumerate explicitly, the paper's line of
work manipulates the transition relation with BDDs: reachability by
implicit image computation, state probabilities without enumerating
edges, and re-encoding of already-encoded machines.  This module
implements those primitives on the framework's netlists:

- :func:`transition_relation`   -- T(x, s, s') of a sequential circuit,
- :func:`reachable_states`      -- least fixpoint of the image from
  the reset state (the classic symbolic traversal),
- :func:`extract_stg`           -- explicit STG recovered from a
  netlist (reachable part only), enabling *re-encoding* [95]: an
  existing implementation's machine is pulled back out, re-encoded for
  low power, and re-synthesized,
- :func:`reencode_circuit`      -- the full re-encoding flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bdd import Bdd, BddManager
from repro.fsm.encoding import Encoding, low_power_encoding
from repro.fsm.stg import STG
from repro.logic.bdd_bridge import net_bdds
from repro.logic.netlist import Circuit


def transition_relation(circuit: Circuit, mgr: Optional[BddManager] = None
                        ) -> Tuple[BddManager, Bdd, List[str], List[str]]:
    """T(inputs, state, next_state) for a sequential netlist.

    Returns (manager, relation, state variable names, next-state
    variable names).  Next-state variables are fresh primed copies,
    registered *interleaved* with their current-state partners (s, s',
    s, s', ...): the relation is a conjunction of per-latch iff terms,
    which stays linear in the latch count under the interleaved order
    but blows up exponentially when all primed variables sit after all
    plain ones.
    """
    mgr = mgr or BddManager()
    for name in circuit.inputs:
        mgr.var(name)
    for latch in circuit.latches:
        mgr.var(latch.output)
        mgr.var(f"{latch.output}'")
    bdds = net_bdds(circuit, mgr)
    state_vars = [l.output for l in circuit.latches]
    next_vars = [f"{v}'" for v in state_vars]
    relation = mgr.true
    for latch, primed in zip(circuit.latches, next_vars):
        next_fn = bdds[latch.data]
        if latch.enable is not None:
            hold = bdds[latch.output]
            next_fn = bdds[latch.enable].ite(next_fn, hold)
        relation = relation & mgr.var(primed).iff(next_fn)
    return mgr, relation, state_vars, next_vars


def image(mgr: BddManager, relation: Bdd, states: Bdd,
          input_names: Sequence[str], state_vars: Sequence[str],
          next_vars: Sequence[str], fused: bool = True) -> Bdd:
    """Forward image: states reachable in one step from ``states``.

    With ``fused`` (default) the conjunction and the existential
    quantification run as one ``and_exists`` traversal — the
    intermediate ``relation & states`` product, which dominates
    reachability time on wide relations, is never materialized.
    ``fused=False`` keeps the textbook conjoin-then-quantify pipeline
    (the baseline ``benchmarks/bench_perf_bdd.py`` measures against).
    """
    quantified = list(input_names) + list(state_vars)
    if fused:
        step = relation.and_exists(states, quantified)
    else:
        step = (relation & states).exists(quantified)
    # Rename primed variables back to the current-state variables.
    result = step
    for primed, plain in zip(next_vars, state_vars):
        result = result.compose(primed, mgr.var(plain))
    return result


def reachable_states(circuit: Circuit, fused: bool = True
                     ) -> Tuple[BddManager, Bdd, List[str]]:
    """Least fixpoint of the image computation from the reset state."""
    mgr, relation, state_vars, next_vars = transition_relation(circuit)
    reset = mgr.cube({l.output: bool(l.init) for l in circuit.latches})
    reached = reset
    frontier = reset
    while True:
        new = image(mgr, relation, frontier, circuit.inputs,
                    state_vars, next_vars, fused=fused)
        grown = reached | new
        if grown == reached:
            break
        frontier = grown & ~reached
        reached = grown
    return mgr, reached, state_vars


def count_reachable(circuit: Circuit) -> int:
    mgr, reached, state_vars = reachable_states(circuit)
    return reached.sat_count(state_vars)


def extract_stg(circuit: Circuit, name: Optional[str] = None) -> STG:
    """Recover the explicit STG of a netlist (reachable states only).

    State names are the codes' bit strings; inputs/outputs follow the
    netlist's ``in*``/``out*`` conventions if present, else all
    primary inputs/outputs in declaration order.
    """
    from repro.logic.simulate import evaluate, next_state

    mgr, reached, state_vars = reachable_states(circuit)
    n_inputs = len(circuit.inputs)
    n_outputs = len(circuit.outputs)
    stg = STG(name or f"{circuit.name}_extracted", n_inputs, n_outputs)

    state_codes: List[Dict[str, bool]] = list(reached.satisfy_all())
    # Expand don't-care paths to full assignments.
    full_states: Set[Tuple[int, ...]] = set()
    for partial in state_codes:
        free = [v for v in state_vars if v not in partial]
        for m in range(1 << len(free)):
            assign = dict(partial)
            for i, v in enumerate(free):
                assign[v] = bool((m >> i) & 1)
            full_states.add(tuple(int(assign[v]) for v in state_vars))

    def state_name(bits: Tuple[int, ...]) -> str:
        return "s" + "".join(str(b) for b in bits)

    reset_bits = tuple(l.init for l in circuit.latches)
    stg.add_state(state_name(reset_bits))
    stg.reset_state = state_name(reset_bits)

    for bits in sorted(full_states):
        state = {v: bits[i] for i, v in enumerate(state_vars)}
        for m in range(1 << n_inputs):
            vec = {n: (m >> i) & 1 for i, n in enumerate(circuit.inputs)}
            values = evaluate(circuit, vec, dict(state))
            nxt = next_state(circuit, values)
            nxt_bits = tuple(nxt[v] for v in state_vars)
            output = "".join(str(values[o]) for o in circuit.outputs)
            cube = format(m, f"0{n_inputs}b")[::-1] if n_inputs else ""
            stg.add_transition(cube, state_name(bits),
                               state_name(nxt_bits), output)
    return stg


def reencode_circuit(circuit: Circuit, seed: int = 0
                     ) -> Tuple[Circuit, STG, Encoding]:
    """Re-encoding flow [95]: netlist -> STG -> low-power encoding ->
    re-synthesized netlist.

    Returns (new circuit, extracted STG, chosen encoding)."""
    from repro.fsm.synthesis import synthesize_fsm

    stg = extract_stg(circuit)
    encoding = low_power_encoding(stg, seed=seed)
    return synthesize_fsm(stg, encoding), stg, encoding
