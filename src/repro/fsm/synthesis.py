"""Controller synthesis: encoded STG to gate-level netlist.

The translation step of Section III-H: given a state assignment, the
next-state and output functions are extracted as two-level on-sets over
(primary inputs, state bits), minimized with don't cares from unused
state codes and unspecified outputs, and mapped onto the generic cell
library.  The result is a sequential :class:`repro.logic.Circuit`
whose power can be measured by the reference simulators, closing the
loop for the encoding experiments (bench C11).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.fsm.encoding import Encoding, binary_encoding
from repro.fsm.stg import STG
from repro.logic.netlist import Circuit
from repro.logic.synthesis import InverterCache, synthesize_cover
from repro.twolevel.cubes import Cube
from repro.twolevel.heuristic import minimize_with_offset
from repro.twolevel.quine_mccluskey import minimize

#: Above this variable count the exact Quine-McCluskey covering (over
#: explicit unused-code don't cares) is replaced by offset-driven
#: heuristic expansion, which never materializes the unused-code space
#: (essential for one-hot encodings of larger machines).
_EXACT_LIMIT = 10


def _cube_minterms(cube: str) -> List[int]:
    """All input minterms matched by a {0,1,-} cube (char i = bit i)."""
    free = [i for i, ch in enumerate(cube) if ch == "-"]
    base = sum(1 << i for i, ch in enumerate(cube) if ch == "1")
    result = []
    for combo in range(1 << len(free)):
        m = base
        for j, pos in enumerate(free):
            if (combo >> j) & 1:
                m |= 1 << pos
        result.append(m)
    return result


def synthesize_fsm(stg: STG, encoding: Optional[Encoding] = None,
                   name: Optional[str] = None) -> Circuit:
    """Build a sequential netlist implementing the (completed) STG.

    Variable order of the extracted functions: primary inputs
    ``in0..in{ni-1}`` occupy bits 0..ni-1, state bits ``sb0..`` the
    remaining positions.  Outputs are ``out0..``; state flops initialise
    to the reset state's code.
    """
    if encoding is None:
        encoding = binary_encoding(stg)
    complete = stg.completed()
    ni = complete.n_inputs
    nb = encoding.n_bits
    n_vars = ni + nb

    used_codes = {encoding.codes[s] for s in complete.states}
    exact = n_vars <= _EXACT_LIMIT
    dc_global: List[int] = []
    if exact:
        for code in range(1 << nb):
            if code not in used_codes:
                for m in range(1 << ni):
                    dc_global.append(m | (code << ni))

    next_onsets: List[List[int]] = [[] for _ in range(nb)]
    next_offsets: List[List[int]] = [[] for _ in range(nb)]
    out_onsets: List[List[int]] = [[] for _ in range(complete.n_outputs)]
    out_offsets: List[List[int]] = [[] for _ in
                                    range(complete.n_outputs)]
    out_dcs: List[List[int]] = [[] for _ in range(complete.n_outputs)]

    for t in complete.transitions:
        src_code = encoding.codes[t.src]
        dst_code = encoding.codes[t.dst]
        for m in _cube_minterms(t.input_cube):
            full = m | (src_code << ni)
            for j in range(nb):
                if (dst_code >> j) & 1:
                    next_onsets[j].append(full)
                else:
                    next_offsets[j].append(full)
            for j, ch in enumerate(t.output):
                if ch == "1":
                    out_onsets[j].append(full)
                elif ch == "-":
                    out_dcs[j].append(full)
                else:
                    out_offsets[j].append(full)

    circuit = Circuit(name or f"{stg.name}_{encoding.strategy}")
    input_nets = circuit.add_inputs([f"in{i}" for i in range(ni)])
    state_nets = [f"sb{j}" for j in range(nb)]
    next_nets = [f"ns{j}" for j in range(nb)]
    reset_code = encoding.codes[complete.reset_state or complete.states[0]]
    for j in range(nb):
        circuit.add_latch(next_nets[j], output=state_nets[j],
                          init=(reset_code >> j) & 1)

    inverters = InverterCache(circuit)
    all_nets = input_nets + state_nets
    for j in range(nb):
        if exact:
            cover = minimize(n_vars, next_onsets[j], dc_global)
        else:
            offset = [Cube.minterm(n_vars, m)
                      for m in set(next_offsets[j])]
            cover = minimize_with_offset(n_vars, next_onsets[j], offset)
        synthesize_cover(cover, all_nets, next_nets[j], circuit=circuit,
                         inverters=inverters)
    for j in range(complete.n_outputs):
        out_net = f"out{j}"
        circuit.add_output(out_net)
        if exact:
            cover = minimize(n_vars, out_onsets[j],
                             dc_global + out_dcs[j])
        else:
            offset = [Cube.minterm(n_vars, m)
                      for m in set(out_offsets[j])]
            cover = minimize_with_offset(n_vars, out_onsets[j], offset)
        synthesize_cover(cover, all_nets, out_net, circuit=circuit,
                         inverters=inverters)
    return circuit


def fsm_input_vector(stg: STG, minterm: int) -> Dict[str, int]:
    """Input-net assignment for an input minterm of the synthesized FSM."""
    return {f"in{i}": (minterm >> i) & 1 for i in range(stg.n_inputs)}


def verify_fsm_netlist(stg: STG, circuit: Circuit, encoding: Encoding,
                       input_sequence: Sequence[int]) -> bool:
    """Cross-check netlist behaviour against the STG simulator.

    Output don't-cares in the STG are skipped; state trajectories are
    compared through the encoding.
    """
    from repro.logic.simulate import evaluate, next_state

    state_values = {f"sb{j}": (encoding.codes[stg.reset_state] >> j) & 1
                    for j in range(encoding.n_bits)}
    symbolic = stg.reset_state
    for bits in input_sequence:
        values = evaluate(circuit, fsm_input_vector(stg, bits), state_values)
        symbolic, out = stg.step(symbolic, bits)
        for j, ch in enumerate(out):
            if ch != "-" and values[f"out{j}"] != int(ch):
                return False
        state_values = next_state(circuit, values)
        code = sum(state_values[f"sb{j}"] << j
                   for j in range(encoding.n_bits))
        if code != encoding.codes[symbolic]:
            return False
    return True
