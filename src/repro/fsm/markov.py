"""Markovian analysis of finite-state machines.

Computes the state-occupation and transition probabilities of an STG
driven by (independent, possibly biased) random inputs — the analysis
of Hachtel et al. [96] that feeds every low-power encoding cost
function (Section III-H) and the Tyagi entropy bounds (Section II-B1).

Two solvers are provided:

- :func:`stationary_distribution` -- exact, via the normalized linear
  system pi (P - I) = 0, sum pi = 1 (numpy least squares keeps it
  robust for reducible chains),
- :func:`stationary_power_iteration` -- the approximate iterative
  method the paper cites for very large machines [31], with Cesaro
  averaging so periodic chains converge too.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.fsm.stg import STG
from repro.util.bits import popcount

#: The batched minterm path materializes a (transitions, 2^n_inputs)
#: match matrix; beyond this many input bits it falls back to the
#: per-cube scalar products.
_MAX_MINTERM_BITS = 16


def _minterm_fractions(stg: STG,
                       bit_probs: Sequence[float]) -> np.ndarray:
    """Input-cube probabilities of every transition, batched.

    Enumerates the ``2^n_inputs`` minterm space once: minterm
    probabilities are the product of per-bit probabilities, each
    transition's fraction is the probability mass of the minterms its
    cube matches.  Equal to the per-cube product of
    ``Transition.input_fraction`` (to float round-off), evaluated as
    two numpy matmuls instead of ``transitions * n_inputs`` scalar
    multiplies.
    """
    m = 1 << stg.n_inputs
    bits = (np.arange(m)[:, None] >> np.arange(stg.n_inputs)) & 1
    q = np.asarray(bit_probs, dtype=np.float64)
    minterm_p = np.prod(np.where(bits == 1, q, 1.0 - q), axis=1)
    match = np.ones((len(stg.transitions), m), dtype=bool)
    for k, t in enumerate(stg.transitions):
        for i, ch in enumerate(t.input_cube):
            if ch == "1":
                match[k] &= bits[:, i] == 1
            elif ch == "0":
                match[k] &= bits[:, i] == 0
    return match @ minterm_p


def transition_matrix(stg: STG,
                      bit_probs: Optional[Sequence[float]] = None,
                      engine: str = "fast"
                      ) -> Tuple[np.ndarray, Dict[str, int]]:
    """Row-stochastic matrix P[i, j] = P(next = j | current = i).

    Unspecified input minterms follow the STG completion convention
    (self-loop).  ``bit_probs[i]`` is the probability input bit i is 1.

    The default engine batches the per-state minterm enumeration into
    vectorized numpy (one pass over the ``2^n_inputs`` space for all
    transitions at once); ``engine="reference"`` walks each cube with
    scalar products.  Both agree to float round-off; machines with
    more than ``_MAX_MINTERM_BITS`` input bits always use the scalar
    cube products.
    """
    index = {s: i for i, s in enumerate(stg.states)}
    n = len(stg.states)
    matrix = np.zeros((n, n))
    if bit_probs is None:
        bit_probs = [0.5] * stg.n_inputs

    if engine == "fast" and stg.n_inputs <= _MAX_MINTERM_BITS \
            and stg.transitions:
        fracs = _minterm_fractions(stg, bit_probs)
        src = np.array([index[t.src] for t in stg.transitions])
        dst = np.array([index[t.dst] for t in stg.transitions])
        np.add.at(matrix, (src, dst), fracs)
        remaining = np.ones(n)
        np.subtract.at(remaining, src, fracs)
        fill = np.where(remaining > 1e-12, remaining, 0.0)
        matrix[np.arange(n), np.arange(n)] += fill
    else:
        for state in stg.states:
            i = index[state]
            remaining = 1.0
            outgoing = stg.transitions_from(state)
            # Deterministic STGs have disjoint cubes, so fractions
            # add up.
            for t in outgoing:
                frac = t.input_fraction(bit_probs)
                matrix[i, index[t.dst]] += frac
                remaining -= frac
            if remaining > 1e-12:
                matrix[i, i] += remaining  # completion self-loop
    # Normalize tiny numerical drift.
    matrix /= matrix.sum(axis=1, keepdims=True)
    return matrix, index


def stationary_distribution(stg: STG,
                            bit_probs: Optional[Sequence[float]] = None
                            ) -> Dict[str, float]:
    """Exact steady-state state probabilities.

    Solves pi P = pi with the normalization constraint by least
    squares; for reducible chains this returns a valid stationary
    distribution concentrated on closed recurrent classes reachable
    under the solver's weighting.
    """
    matrix, index = transition_matrix(stg, bit_probs)
    n = matrix.shape[0]
    # (P^T - I) pi = 0 plus sum(pi) = 1.
    a = np.vstack([matrix.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise RuntimeError("stationary distribution collapsed to zero")
    pi /= total
    return {state: float(pi[i]) for state, i in index.items()}


def stationary_power_iteration(stg: STG,
                               bit_probs: Optional[Sequence[float]] = None,
                               iterations: int = 2000,
                               tol: float = 1e-10) -> Dict[str, float]:
    """Approximate steady state by (Cesaro-averaged) power iteration."""
    matrix, index = transition_matrix(stg, bit_probs)
    n = matrix.shape[0]
    pi = np.zeros(n)
    start = index.get(stg.reset_state or stg.states[0], 0)
    pi[start] = 1.0
    average = np.zeros(n)
    for k in range(1, iterations + 1):
        nxt = pi @ matrix
        average += nxt
        if np.abs(nxt - pi).max() < tol and k > 10:
            pi = nxt
            average = pi * k  # converged pointwise; no averaging needed
            break
        pi = nxt
    average /= max(1, k)
    average /= average.sum()
    return {state: float(average[i]) for state, i in index.items()}


def transition_probabilities(stg: STG,
                             bit_probs: Optional[Sequence[float]] = None
                             ) -> Dict[Tuple[str, str], float]:
    """Steady-state edge probabilities p_ij = pi_i P[i, j].

    These are the weights low-power encoders minimize against: the
    expected per-cycle Hamming switching of an encoding E is
    sum_ij p_ij * H(E(i), E(j)).
    """
    matrix, index = transition_matrix(stg, bit_probs)
    pi = stationary_distribution(stg, bit_probs)
    result: Dict[Tuple[str, str], float] = {}
    for si, i in index.items():
        for sj, j in index.items():
            p = pi[si] * matrix[i, j]
            if p > 0:
                result[(si, sj)] = float(p)
    return result


def transition_entropy(stg: STG,
                       bit_probs: Optional[Sequence[float]] = None) -> float:
    """Entropy h(p_ij) of the steady-state edge distribution (bits)."""
    probs = transition_probabilities(stg, bit_probs)
    total = sum(probs.values())
    h = 0.0
    for p in probs.values():
        q = p / total
        if q > 0:
            h -= q * np.log2(q)
    return float(h)


def expected_state_line_switching(stg: STG, codes: Dict[str, int],
                                  bit_probs: Optional[Sequence[float]] = None,
                                  engine: Optional[str] = None) -> float:
    """Expected state-register bit flips per cycle for an encoding.

    The packed engines evaluate the pair set with one vectorized
    popcount (:func:`repro.rtl.faststreams.weighted_hamming`, which
    itself degrades to the scalar loop without numpy); codes wider
    than :data:`repro.util.bits.MAX_UINT64_CODE_BITS` use the scalar
    reference.
    """
    from repro.backend.core import default_engine, resolve_engine
    from repro.util.bits import MAX_UINT64_CODE_BITS

    probs = transition_probabilities(stg, bit_probs)
    engine = resolve_engine(engine, default_engine())
    if engine != "reference" and probs and \
            max(codes.values(), default=0).bit_length() \
            <= MAX_UINT64_CODE_BITS:
        from repro.rtl import faststreams
        pairs = list(probs)
        code_list = [codes[a] for a, _b in pairs] \
            + [codes[b] for _a, b in pairs]
        k = len(pairs)
        return faststreams.weighted_hamming(
            code_list, range(k), range(k, 2 * k),
            [probs[pair] for pair in pairs])
    total = 0.0
    for (si, sj), p in probs.items():
        total += p * popcount(codes[si] ^ codes[sj])
    return total
