"""Mealy state transition graph model.

States are symbolic names; transitions carry an input cube (string over
``{0,1,-}``) and an output string (over ``{0,1,-}``).  The model is the
explicit STG of Section III-H; symbolic (BDD) analyses are layered on
top via :mod:`repro.fsm.synthesis` and :mod:`repro.logic.bdd_bridge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Transition:
    """Edge of the STG: on ``input_cube`` from ``src`` go to ``dst``."""

    input_cube: str
    src: str
    dst: str
    output: str

    def matches(self, input_bits: int) -> bool:
        """Does this transition fire for the given input minterm?

        Bit i of ``input_bits`` corresponds to character i of the cube.
        """
        for i, ch in enumerate(self.input_cube):
            bit = (input_bits >> i) & 1
            if ch == "1" and bit != 1:
                return False
            if ch == "0" and bit != 0:
                return False
        return True

    def input_fraction(self, bit_probs: Optional[Sequence[float]] = None
                       ) -> float:
        """Probability of the input cube under independent input bits."""
        p = 1.0
        for i, ch in enumerate(self.input_cube):
            q = bit_probs[i] if bit_probs is not None else 0.5
            if ch == "1":
                p *= q
            elif ch == "0":
                p *= 1.0 - q
        return p


class STG:
    """A deterministic Mealy machine given as an explicit STG."""

    def __init__(self, name: str, n_inputs: int, n_outputs: int,
                 reset_state: Optional[str] = None) -> None:
        self.name = name
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.states: List[str] = []
        self.transitions: List[Transition] = []
        self.reset_state = reset_state

    # ------------------------------------------------------------------
    def add_state(self, state: str) -> str:
        if state not in self.states:
            self.states.append(state)
            if self.reset_state is None:
                self.reset_state = state
        return state

    def add_transition(self, input_cube: str, src: str, dst: str,
                       output: str) -> Transition:
        if len(input_cube) != self.n_inputs:
            raise ValueError(
                f"input cube {input_cube!r} width != {self.n_inputs}")
        if len(output) != self.n_outputs:
            raise ValueError(f"output {output!r} width != {self.n_outputs}")
        self.add_state(src)
        self.add_state(dst)
        t = Transition(input_cube, src, dst, output)
        self.transitions.append(t)
        return t

    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        return len(self.states)

    def transitions_from(self, state: str) -> List[Transition]:
        return [t for t in self.transitions if t.src == state]

    def step(self, state: str, input_bits: int) -> Tuple[str, str]:
        """Next state and output for an input minterm.

        Unspecified input combinations self-loop with all-don't-care
        output (a common completion convention).
        """
        for t in self.transitions_from(state):
            if t.matches(input_bits):
                return t.dst, t.output
        return state, "-" * self.n_outputs

    def simulate(self, inputs: Iterable[int],
                 start: Optional[str] = None) -> List[Tuple[str, str]]:
        """Run an input-minterm sequence; returns (next_state, output)."""
        state = start or self.reset_state
        if state is None:
            raise ValueError("STG has no states")
        trace: List[Tuple[str, str]] = []
        for bits in inputs:
            state, out = self.step(state, bits)
            trace.append((state, out))
        return trace

    def is_deterministic(self) -> bool:
        """No state has two transitions firing on a common minterm."""
        for state in self.states:
            outgoing = self.transitions_from(state)
            for i, a in enumerate(outgoing):
                for b in outgoing[i + 1:]:
                    if self._cubes_intersect(a.input_cube, b.input_cube):
                        return False
        return True

    def is_complete(self) -> bool:
        """Every state covers every input minterm."""
        for state in self.states:
            outgoing = self.transitions_from(state)
            for m in range(1 << self.n_inputs):
                if not any(t.matches(m) for t in outgoing):
                    return False
        return True

    @staticmethod
    def _cubes_intersect(a: str, b: str) -> bool:
        return all(x == "-" or y == "-" or x == y for x, y in zip(a, b))

    def reachable_states(self, start: Optional[str] = None) -> Set[str]:
        start = start or self.reset_state
        if start is None:
            return set()
        seen = {start}
        frontier = [start]
        adjacency: Dict[str, Set[str]] = {}
        for t in self.transitions:
            adjacency.setdefault(t.src, set()).add(t.dst)
        while frontier:
            state = frontier.pop()
            for nxt in adjacency.get(state, ()):  # pragma: no branch
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def self_loop_fraction(self) -> float:
        """Fraction of transitions that are self-loops (idle behaviour).

        High values indicate good gated-clock candidates (Section III-I).
        """
        if not self.transitions:
            return 0.0
        loops = sum(1 for t in self.transitions if t.src == t.dst)
        return loops / len(self.transitions)

    def completed(self) -> "STG":
        """Return a completely specified copy (self-loops, 0 outputs)."""
        copy = STG(self.name, self.n_inputs, self.n_outputs,
                   self.reset_state)
        for s in self.states:
            copy.add_state(s)
        copy.transitions = list(self.transitions)
        for state in self.states:
            outgoing = self.transitions_from(state)
            for m in range(1 << self.n_inputs):
                if not any(t.matches(m) for t in outgoing):
                    cube = format(m, f"0{self.n_inputs}b")[::-1] \
                        if self.n_inputs else ""
                    copy.transitions.append(
                        Transition(cube, state, state,
                                   "0" * self.n_outputs))
        return copy

    def __repr__(self) -> str:
        return (f"STG({self.name!r}, states={self.n_states}, "
                f"in={self.n_inputs}, out={self.n_outputs}, "
                f"edges={len(self.transitions)})")
