"""FSM decomposition for selective shutdown (Section III-H, [86], [87]).

Partitions the state set of a machine into two interacting submachines
so that only one is active at any time: each submachine gets a wait
state, and crossings of the partition become handoffs.  Because the
inactive submachine sits in its wait state, it can be clock-gated —
the "shutdown techniques applied to the individual machines" the paper
describes.

The partitioning objective is the one both cited approaches share:
minimize the steady-state probability mass of edges crossing the cut
(the interface lines drive heavy loads), balanced by a size constraint.
A Kernighan-Lin style refinement over the transition-probability graph
does the work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.fsm.markov import transition_probabilities
from repro.fsm.stg import STG, Transition


@dataclass
class Decomposition:
    """A two-way partition of the state set."""

    part_a: List[str]
    part_b: List[str]
    crossing_probability: float    # steady-state handoff rate

    def partition_of(self, state: str) -> int:
        return 0 if state in self.part_a else 1


def partition_states(stg: STG,
                     bit_probs: Optional[Sequence[float]] = None,
                     balance: float = 0.25,
                     passes: int = 4) -> Decomposition:
    """Two-way min-crossing partition of the STG.

    ``balance`` bounds how lopsided the split may be (each side gets
    at least ``balance * n_states`` states).  Greedy seeding by the
    heaviest edge, then KL-style single-state moves.
    """
    probs = transition_probabilities(stg, bit_probs)
    weight: Dict[Tuple[str, str], float] = {}
    for (a, b), p in probs.items():
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        weight[key] = weight.get(key, 0.0) + p

    states = list(stg.states)
    n = len(states)
    min_side = max(1, int(balance * n))
    # Alternating seed keeps both sides populated; KL moves do the
    # rest (a move that would empty a side is always rejected).
    side: Dict[str, int] = {s: i % 2 for i, s in enumerate(states)}

    def crossing() -> float:
        return sum(w for (x, y), w in weight.items()
                   if side[x] != side[y])

    def sizes() -> Tuple[int, int]:
        zero = sum(1 for s in states if side[s] == 0)
        return zero, n - zero

    for _ in range(passes):
        improved = False
        for state in states:
            current = crossing()
            side[state] ^= 1
            a_size, b_size = sizes()
            if min(a_size, b_size) < min_side or crossing() >= current:
                side[state] ^= 1
            else:
                improved = True
        if not improved:
            break

    part_a = [s for s in states if side[s] == 0]
    part_b = [s for s in states if side[s] == 1]
    return Decomposition(part_a, part_b, crossing())


def submachine(stg: STG, states: Sequence[str],
               name: str) -> STG:
    """Extract the submachine over ``states`` with a WAIT state.

    Transitions leaving the subset retarget to WAIT (the handoff);
    WAIT self-loops on every input (the partner machine is running).
    Re-entry transitions are summarized as a single wakeup edge from
    WAIT to the original entry state on the all-don't-care input; in a
    full implementation the partner drives a dedicated wake line, which
    the interface-activity analysis below accounts for separately.
    """
    inside = set(states)
    sub = STG(name, stg.n_inputs, stg.n_outputs)
    for s in states:
        sub.add_state(s)
    wait = f"{name}_WAIT"
    sub.add_state(wait)
    for t in stg.transitions:
        if t.src in inside:
            dst = t.dst if t.dst in inside else wait
            sub.transitions.append(
                Transition(t.input_cube, t.src, dst, t.output))
    sub.transitions.append(
        Transition("-" * stg.n_inputs, wait, wait, "0" * stg.n_outputs))
    if stg.reset_state in inside:
        sub.reset_state = stg.reset_state
    else:
        sub.reset_state = wait
    return sub


@dataclass
class DecompositionReport:
    decomposition: Decomposition
    active_fraction_a: float     # steady-state time in submachine A
    handoffs_per_cycle: float

    @property
    def shutdown_potential(self) -> float:
        """Fraction of (machine, cycle) pairs that can be gated off:
        each cycle exactly one submachine is active, so the other's
        clock can stop (minus handoff cycles)."""
        return 1.0 - self.handoffs_per_cycle


def evaluate_decomposition(stg: STG,
                           bit_probs: Optional[Sequence[float]] = None
                           ) -> DecompositionReport:
    """Partition and report the shutdown opportunity."""
    from repro.fsm.markov import stationary_distribution

    decomposition = partition_states(stg, bit_probs)
    pi = stationary_distribution(stg, bit_probs)
    active_a = sum(pi[s] for s in decomposition.part_a)
    return DecompositionReport(
        decomposition=decomposition,
        active_fraction_a=active_a,
        handoffs_per_cycle=decomposition.crossing_probability,
    )
