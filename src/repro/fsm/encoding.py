"""State assignment (encoding) for low power.

Implements the family of encoding strategies compared in Section
III-H: the problem is embedding the STG into a hypercube so that
high-probability transitions connect states at low Hamming distance
([90]-[95]).  Besides the classical baselines (binary, Gray order,
one-hot, random), :func:`low_power_encoding` performs the
probability-weighted embedding with a greedy constructive phase
followed by simulated-annealing improvement — the "standard search
techniques" the paper refers to.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backend.core import default_engine, numpy_or_none, \
    resolve_engine
from repro.fsm.markov import transition_probabilities
from repro.fsm.stg import STG
from repro.rtl import faststreams
from repro.util.bits import MAX_UINT64_CODE_BITS
from repro.util.bits import hamming as _hamming

#: Codes wider than this cannot be held in a uint64 lane; the
#: vectorized cost paths fall back to the scalar reference.  Shared
#: with the Markov switching objective (repro.util.bits).
_MAX_VECTOR_BITS = MAX_UINT64_CODE_BITS


@dataclass
class Encoding:
    """Assignment of binary codes to states."""

    codes: Dict[str, int]
    n_bits: int
    strategy: str = "custom"

    def code_string(self, state: str) -> str:
        return format(self.codes[state], f"0{self.n_bits}b")[::-1]

    def hamming(self, a: str, b: str) -> int:
        return _hamming(self.codes[a], self.codes[b])


def min_bits(n_states: int) -> int:
    return max(1, (n_states - 1).bit_length())


def binary_encoding(stg: STG) -> Encoding:
    """States numbered in declaration order."""
    bits = min_bits(stg.n_states)
    return Encoding({s: i for i, s in enumerate(stg.states)}, bits, "binary")


def _gray(i: int) -> int:
    return i ^ (i >> 1)


def gray_encoding(stg: STG) -> Encoding:
    """States assigned consecutive Gray codes in declaration order."""
    bits = min_bits(stg.n_states)
    return Encoding({s: _gray(i) for i, s in enumerate(stg.states)}, bits,
                    "gray")


def one_hot_encoding(stg: STG) -> Encoding:
    return Encoding({s: 1 << i for i, s in enumerate(stg.states)},
                    stg.n_states, "one-hot")


def random_encoding(stg: STG, seed: int = 0,
                    n_bits: Optional[int] = None) -> Encoding:
    bits = n_bits or min_bits(stg.n_states)
    if (1 << bits) < stg.n_states:
        raise ValueError("not enough code bits for the state count")
    rng = random.Random(seed)
    codes = rng.sample(range(1 << bits), stg.n_states)
    return Encoding(dict(zip(stg.states, codes)), bits, "random")


def encoding_switching_cost(stg: STG, encoding: Encoding,
                            bit_probs: Optional[Sequence[float]] = None,
                            probs: Optional[Dict[Tuple[str, str], float]]
                            = None,
                            engine: Optional[str] = None) -> float:
    """Expected state-line Hamming switching per cycle.

    This is the canonical cost  sum_ij p_ij H(E(i), E(j))  that all the
    cited encoding papers minimize (and that the Tyagi bound lower
    bounds).  The packed engines evaluate it as one vectorized
    popcount over the pair set (agreeing with the scalar reference to
    float round-off); codes wider than
    :data:`repro.util.bits.MAX_UINT64_CODE_BITS` (e.g. one-hot beyond
    64 states) fall back to the reference, as does a missing numpy —
    :func:`repro.rtl.faststreams.weighted_hamming` degrades to the
    same scalar loop.
    """
    if probs is None:
        probs = transition_probabilities(stg, bit_probs)
    engine = resolve_engine(engine, default_engine())
    if engine != "reference" \
            and encoding.n_bits <= MAX_UINT64_CODE_BITS:
        pairs = [(a, b) for (a, b) in probs if a != b]
        if not pairs:
            return 0.0
        codes = [encoding.codes[a] for a, _b in pairs] \
            + [encoding.codes[b] for _a, b in pairs]
        n = len(pairs)
        return faststreams.weighted_hamming(
            codes, range(n), range(n, 2 * n),
            [probs[pair] for pair in pairs])
    return sum(p * encoding.hamming(a, b) for (a, b), p in probs.items()
               if a != b)


class _WeightVectors:
    """Index-space view of the symmetric pair weights.

    Per-state neighbour arrays (indices + probabilities) let the
    greedy placement and the annealing deltas evaluate weighted
    Hamming sums as vectorized popcounts instead of dict walks — the
    per-lane transition-probability formulation of the packed engine.
    """

    def __init__(self, states: Sequence[str],
                 weight: Dict[Tuple[str, str], float]) -> None:
        np = numpy_or_none()
        if np is None:                 # callers gate on availability
            raise RuntimeError("_WeightVectors requires numpy")
        self.np = np
        self.index = {s: i for i, s in enumerate(states)}
        neighbours: List[List[Tuple[int, float]]] = \
            [[] for _ in states]
        for (a, b), p in weight.items():
            ia, ib = self.index[a], self.index[b]
            neighbours[ia].append((ib, p))
            neighbours[ib].append((ia, p))
        self.nb_idx = [np.array([i for i, _p in nb], dtype=np.intp)
                       for nb in neighbours]
        self.nb_p = [np.array([p for _i, p in nb], dtype=np.float64)
                     for nb in neighbours]
        self.pair_ia = np.array([self.index[a] for a, _b in weight],
                                dtype=np.intp)
        self.pair_ib = np.array([self.index[b] for _a, b in weight],
                                dtype=np.intp)
        self.pair_p = np.array(list(weight.values()), dtype=np.float64)

    def total_cost(self, codes_arr) -> float:
        np = self.np
        diff = codes_arr[self.pair_ia] ^ codes_arr[self.pair_ib]
        return float(np.dot(self.pair_p,
                            faststreams.popcount_array(diff)))

    def move_delta(self, codes_arr, si: int,
                   new_code: int) -> float:
        """Cost change of moving state ``si`` to ``new_code``."""
        np = self.np
        idx = self.nb_idx[si]
        if not len(idx):
            return 0.0
        others = codes_arr[idx]
        h_new = faststreams.popcount_array(others ^ np.uint64(new_code))
        h_old = faststreams.popcount_array(others ^ codes_arr[si])
        return float(np.dot(self.nb_p[si], h_new - h_old))

    def swap_delta(self, codes_arr, sa: int,
                   sb: int) -> float:
        """Cost change of exchanging the codes of two states."""
        np = self.np
        ca, cb = codes_arr[sa], codes_arr[sb]
        delta = 0.0
        for si, mine, theirs, other_state in ((sa, ca, cb, sb),
                                              (sb, cb, ca, sa)):
            idx = self.nb_idx[si]
            if not len(idx):
                continue
            keep = idx != other_state   # the (a, b) pair itself is
            idx = idx[keep]             # unchanged by the swap
            if not len(idx):
                continue
            others = codes_arr[idx]
            h_new = faststreams.popcount_array(others ^ theirs)
            h_old = faststreams.popcount_array(others ^ mine)
            delta += float(np.dot(self.nb_p[si][keep], h_new - h_old))
        return delta


def _anneal_restart(candidate, ctx):
    """Search-pool job: one simulated-annealing run from the greedy
    codes.

    ``candidate`` is ``(restart_index, seed)``; the shared greedy
    embedding, pair weights and schedule ride ``ctx.extras`` (shipped
    once per worker).  Returns ``(best_cost, best_codes)``; runs are
    fully determined by their seed, so parallel restarts return
    bit-identical results to the serial walk.
    """
    _k, run_seed = candidate
    ex = ctx.extras
    return _anneal(ex["states"], ex["weight"], ex["codes"], ex["free"],
                   ex["bits"], run_seed, ex["anneal_steps"],
                   ex["engine"])


def _anneal(states: Sequence[str],
            weight: Dict[Tuple[str, str], float],
            codes: Dict[str, int], free: Sequence[int], bits: int,
            seed: Optional[int], anneal_steps: int,
            engine: str) -> Tuple[float, Dict[str, int]]:
    """Pairwise code-swap annealing under geometric cooling.

    Extracted verbatim from the historical in-line loop so the RNG
    stream (and hence every committed expected encoding) is
    unchanged; shared by the single-run path and the parallel-restart
    fan-out.
    """
    np = numpy_or_none()
    fast = engine != "reference" and bits <= MAX_UINT64_CODE_BITS \
        and np is not None
    vectors = _WeightVectors(states, weight) if fast else None
    codes = dict(codes)

    def total_cost(assign: Dict[str, int]) -> float:
        if fast:
            codes_arr = np.array([assign[s] for s in states],
                                 dtype=np.uint64)
            return vectors.total_cost(codes_arr)
        return sum(p * _hamming(assign[a], assign[b])
                   for (a, b), p in weight.items())

    rng = random.Random(seed)
    states = list(states)
    pool = states + [None] * len(free)   # None slots are unused codes
    free_codes = sorted(free)
    codes_arr = np.array([codes[s] for s in states], dtype=np.uint64) \
        if fast else None
    current = total_cost(codes)
    best = dict(codes)
    best_cost = current
    t0 = max(current, 1e-6)
    for step in range(anneal_steps):
        temp = t0 * (0.995 ** step) + 1e-9
        a = rng.choice(states)
        b = rng.choice(pool)
        if b is a:
            continue
        if b is None:
            if not free_codes:
                continue
            idx = rng.randrange(len(free_codes))
            new_code = free_codes[idx]
            old_code = codes[a]
            if fast:
                delta = vectors.move_delta(codes_arr, vectors.index[a],
                                           new_code)
            else:
                delta = _swap_delta(codes, weight, a, new_code)
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                codes[a] = new_code
                if fast:
                    codes_arr[vectors.index[a]] = new_code
                free_codes[idx] = old_code
                current += delta
        else:
            if fast:
                delta = vectors.swap_delta(codes_arr, vectors.index[a],
                                           vectors.index[b])
            else:
                delta = _pair_swap_delta(codes, weight, a, b)
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                codes[a], codes[b] = codes[b], codes[a]
                if fast:
                    ia, ib = vectors.index[a], vectors.index[b]
                    codes_arr[ia], codes_arr[ib] = \
                        codes_arr[ib], codes_arr[ia]
                current += delta
        if current < best_cost - 1e-12:
            best_cost = current
            best = dict(codes)
    return best_cost, best


def low_power_encoding(stg: STG,
                       bit_probs: Optional[Sequence[float]] = None,
                       n_bits: Optional[int] = None,
                       seed: int = 0,
                       anneal_steps: int = 4000,
                       use_annealing: bool = True,
                       engine: Optional[str] = None,
                       restarts: int = 1,
                       workers: Union[int, str, None] = None
                       ) -> Encoding:
    """Probability-weighted hypercube embedding.

    Greedy phase: states in decreasing total edge weight claim the free
    code at minimum weighted Hamming distance from already-placed
    neighbours.  Annealing phase: pairwise code swaps (including swaps
    with unused codes) under a geometric cooling schedule.

    ``restarts > 1`` runs that many independent annealing chains from
    the greedy embedding — restart ``k`` is seeded with the spawn key
    ``seeding.child_seed(seed, k)`` (restart 0 keeps ``seed`` itself,
    so the default single run reproduces the historical encoding) —
    and keeps the lowest-cost result, ties broken by restart index.
    ``workers`` fans the restarts over the shared search pool
    (:mod:`repro.optimization.search`); the winner is identical for
    any worker count.

    Set ``use_annealing=False`` for the greedy-only ablation.  The
    default packed engine evaluates candidate costs and swap deltas as
    vectorized popcounts over the per-state transition-probability
    vectors; ``engine="reference"`` keeps the scalar dict walks (the
    two may differ on exact cost ties, as both are heuristics over
    float scores that agree to round-off).  The vectorized path also
    steps aside — to the identical-math scalar walks, not an error —
    when numpy is missing or the codes exceed
    :data:`repro.util.bits.MAX_UINT64_CODE_BITS`.
    """
    np = numpy_or_none()
    bits = n_bits or min_bits(stg.n_states)
    if (1 << bits) < stg.n_states:
        raise ValueError("not enough code bits for the state count")
    probs = transition_probabilities(stg, bit_probs)

    # Symmetric weights between distinct states.
    weight: Dict[Tuple[str, str], float] = {}
    for (a, b), p in probs.items():
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        weight[key] = weight.get(key, 0.0) + p

    engine = resolve_engine(engine, default_engine())
    fast = engine != "reference" and bits <= MAX_UINT64_CODE_BITS \
        and np is not None

    def w(a: str, b: str) -> float:
        return weight.get((a, b) if a < b else (b, a), 0.0)

    # ---- greedy constructive phase ----
    totals = {s: 0.0 for s in stg.states}
    for (a, b), p in weight.items():
        totals[a] += p
        totals[b] += p
    order = sorted(stg.states, key=lambda s: -totals[s])
    free = set(range(1 << bits))
    codes: Dict[str, int] = {}
    for state in order:
        placed = [(other, codes[other]) for other in codes
                  if w(state, other) > 0]
        if not placed:
            code = min(free)
        elif fast:
            candidates = sorted(free)
            cand_arr = np.array(candidates, dtype=np.uint64)
            placed_codes = np.array([c for _o, c in placed],
                                    dtype=np.uint64)
            weights = np.array([w(state, other) for other, _c in placed],
                               dtype=np.float64)
            costs = faststreams.popcount_array(
                cand_arr[:, None] ^ placed_codes[None, :]) @ weights
            code = candidates[int(np.argmin(costs))]
        else:
            def cost_of(candidate: int) -> float:
                return sum(w(state, other)
                           * _hamming(candidate, c)
                           for other, c in placed)
            code = min(free, key=cost_of)
        codes[state] = code
        free.discard(code)

    if not use_annealing:
        return Encoding(codes, bits, "low-power-greedy")

    # ---- simulated-annealing improvement ----
    from repro.optimization import search
    from repro.util import seeding

    n_restarts = max(1, int(restarts))
    run_seeds = [seed] + [seeding.child_seed(seed, k)
                          for k in range(1, n_restarts)]
    extras = {"states": list(stg.states), "weight": weight,
              "codes": codes, "free": sorted(free), "bits": bits,
              "anneal_steps": anneal_steps, "engine": engine}
    results = search.evaluate_candidates(
        _anneal_restart, list(enumerate(run_seeds)),
        extras=extras, workers=workers, label="fsm_encoding")
    best_i = min(range(n_restarts), key=lambda i: (results[i][0], i))
    return Encoding(results[best_i][1], bits, "low-power-annealed")


def _swap_delta(codes: Dict[str, int],
                weight: Dict[Tuple[str, str], float],
                state: str, new_code: int) -> float:
    old_code = codes[state]
    delta = 0.0
    for (a, b), p in weight.items():
        if a == state:
            other = codes[b]
        elif b == state:
            other = codes[a]
        else:
            continue
        delta += p * (_hamming(new_code, other)
                      - _hamming(old_code, other))
    return delta


def _pair_swap_delta(codes: Dict[str, int],
                     weight: Dict[Tuple[str, str], float],
                     sa: str, sb: str) -> float:
    ca, cb = codes[sa], codes[sb]
    delta = 0.0
    for (a, b), p in weight.items():
        old = _hamming(codes[a], codes[b])
        na = cb if a == sa else (ca if a == sb else codes[a])
        nb = cb if b == sa else (ca if b == sb else codes[b])
        new = _hamming(na, nb)
        if new != old:
            delta += p * (new - old)
    return delta
