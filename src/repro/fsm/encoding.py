"""State assignment (encoding) for low power.

Implements the family of encoding strategies compared in Section
III-H: the problem is embedding the STG into a hypercube so that
high-probability transitions connect states at low Hamming distance
([90]-[95]).  Besides the classical baselines (binary, Gray order,
one-hot, random), :func:`low_power_encoding` performs the
probability-weighted embedding with a greedy constructive phase
followed by simulated-annealing improvement — the "standard search
techniques" the paper refers to.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fsm.markov import transition_probabilities
from repro.fsm.stg import STG


@dataclass
class Encoding:
    """Assignment of binary codes to states."""

    codes: Dict[str, int]
    n_bits: int
    strategy: str = "custom"

    def code_string(self, state: str) -> str:
        return format(self.codes[state], f"0{self.n_bits}b")[::-1]

    def hamming(self, a: str, b: str) -> int:
        return bin(self.codes[a] ^ self.codes[b]).count("1")


def min_bits(n_states: int) -> int:
    return max(1, (n_states - 1).bit_length())


def binary_encoding(stg: STG) -> Encoding:
    """States numbered in declaration order."""
    bits = min_bits(stg.n_states)
    return Encoding({s: i for i, s in enumerate(stg.states)}, bits, "binary")


def _gray(i: int) -> int:
    return i ^ (i >> 1)


def gray_encoding(stg: STG) -> Encoding:
    """States assigned consecutive Gray codes in declaration order."""
    bits = min_bits(stg.n_states)
    return Encoding({s: _gray(i) for i, s in enumerate(stg.states)}, bits,
                    "gray")


def one_hot_encoding(stg: STG) -> Encoding:
    return Encoding({s: 1 << i for i, s in enumerate(stg.states)},
                    stg.n_states, "one-hot")


def random_encoding(stg: STG, seed: int = 0,
                    n_bits: Optional[int] = None) -> Encoding:
    bits = n_bits or min_bits(stg.n_states)
    if (1 << bits) < stg.n_states:
        raise ValueError("not enough code bits for the state count")
    rng = random.Random(seed)
    codes = rng.sample(range(1 << bits), stg.n_states)
    return Encoding(dict(zip(stg.states, codes)), bits, "random")


def encoding_switching_cost(stg: STG, encoding: Encoding,
                            bit_probs: Optional[Sequence[float]] = None,
                            probs: Optional[Dict[Tuple[str, str], float]]
                            = None) -> float:
    """Expected state-line Hamming switching per cycle.

    This is the canonical cost  sum_ij p_ij H(E(i), E(j))  that all the
    cited encoding papers minimize (and that the Tyagi bound lower
    bounds).
    """
    if probs is None:
        probs = transition_probabilities(stg, bit_probs)
    return sum(p * encoding.hamming(a, b) for (a, b), p in probs.items()
               if a != b)


def low_power_encoding(stg: STG,
                       bit_probs: Optional[Sequence[float]] = None,
                       n_bits: Optional[int] = None,
                       seed: int = 0,
                       anneal_steps: int = 4000,
                       use_annealing: bool = True) -> Encoding:
    """Probability-weighted hypercube embedding.

    Greedy phase: states in decreasing total edge weight claim the free
    code at minimum weighted Hamming distance from already-placed
    neighbours.  Annealing phase: pairwise code swaps (including swaps
    with unused codes) under a geometric cooling schedule.

    Set ``use_annealing=False`` for the greedy-only ablation.
    """
    bits = n_bits or min_bits(stg.n_states)
    if (1 << bits) < stg.n_states:
        raise ValueError("not enough code bits for the state count")
    probs = transition_probabilities(stg, bit_probs)

    # Symmetric weights between distinct states.
    weight: Dict[Tuple[str, str], float] = {}
    for (a, b), p in probs.items():
        if a == b:
            continue
        key = (a, b) if a < b else (b, a)
        weight[key] = weight.get(key, 0.0) + p

    def w(a: str, b: str) -> float:
        return weight.get((a, b) if a < b else (b, a), 0.0)

    # ---- greedy constructive phase ----
    totals = {s: 0.0 for s in stg.states}
    for (a, b), p in weight.items():
        totals[a] += p
        totals[b] += p
    order = sorted(stg.states, key=lambda s: -totals[s])
    free = set(range(1 << bits))
    codes: Dict[str, int] = {}
    for state in order:
        placed = [(other, codes[other]) for other in codes
                  if w(state, other) > 0]
        if not placed:
            code = min(free)
        else:
            def cost_of(candidate: int) -> float:
                return sum(w(state, other)
                           * bin(candidate ^ c).count("1")
                           for other, c in placed)
            code = min(free, key=cost_of)
        codes[state] = code
        free.discard(code)

    def total_cost(assign: Dict[str, int]) -> float:
        return sum(p * bin(assign[a] ^ assign[b]).count("1")
                   for (a, b), p in weight.items())

    if not use_annealing:
        return Encoding(codes, bits, "low-power-greedy")

    # ---- simulated-annealing improvement ----
    rng = random.Random(seed)
    states = list(stg.states)
    pool = states + [None] * len(free)   # None slots are unused codes
    free_codes = sorted(free)
    current = total_cost(codes)
    best = dict(codes)
    best_cost = current
    t0 = max(current, 1e-6)
    for step in range(anneal_steps):
        temp = t0 * (0.995 ** step) + 1e-9
        a = rng.choice(states)
        b = rng.choice(pool)
        if b is a:
            continue
        if b is None:
            if not free_codes:
                continue
            idx = rng.randrange(len(free_codes))
            new_code = free_codes[idx]
            old_code = codes[a]
            delta = _swap_delta(codes, weight, a, new_code)
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                codes[a] = new_code
                free_codes[idx] = old_code
                current += delta
        else:
            delta = _pair_swap_delta(codes, weight, a, b)
            if delta <= 0 or rng.random() < math.exp(-delta / temp):
                codes[a], codes[b] = codes[b], codes[a]
                current += delta
        if current < best_cost - 1e-12:
            best_cost = current
            best = dict(codes)
    return Encoding(best, bits, "low-power-annealed")


def _swap_delta(codes: Dict[str, int],
                weight: Dict[Tuple[str, str], float],
                state: str, new_code: int) -> float:
    old_code = codes[state]
    delta = 0.0
    for (a, b), p in weight.items():
        if a == state:
            other = codes[b]
        elif b == state:
            other = codes[a]
        else:
            continue
        delta += p * (bin(new_code ^ other).count("1")
                      - bin(old_code ^ other).count("1"))
    return delta


def _pair_swap_delta(codes: Dict[str, int],
                     weight: Dict[Tuple[str, str], float],
                     sa: str, sb: str) -> float:
    ca, cb = codes[sa], codes[sb]
    delta = 0.0
    for (a, b), p in weight.items():
        old = bin(codes[a] ^ codes[b]).count("1")
        na = cb if a == sa else (ca if a == sb else codes[a])
        nb = cb if b == sa else (ca if b == sb else codes[b])
        new = bin(na ^ nb).count("1")
        if new != old:
            delta += p * (new - old)
    return delta
