"""KISS2 FSM interchange format and built-in benchmark suite.

The paper's encoding experiments run over MCNC-style FSM benchmarks;
since those files cannot be redistributed here, the module ships a
suite of comparable controllers (traffic-light, handshake protocol
with wait states, sequence detectors, counters, arbiters) plus a
random-STG generator, all exposed through :func:`benchmark`.

KISS2 convention used: in an input cube, character ``i`` corresponds
to input bit ``i`` (LSB first), matching :class:`repro.fsm.stg.STG`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, TextIO

from repro.fsm.stg import STG


def read_kiss(stream: TextIO, name: str = "fsm") -> STG:
    n_inputs = n_outputs = 0
    reset: Optional[str] = None
    rows: List[List[str]] = []
    for raw in stream:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        if tokens[0] == ".i":
            n_inputs = int(tokens[1])
        elif tokens[0] == ".o":
            n_outputs = int(tokens[1])
        elif tokens[0] == ".r":
            reset = tokens[1]
        elif tokens[0] in (".s", ".p"):
            continue
        elif tokens[0] in (".e", ".end"):
            break
        elif not tokens[0].startswith("."):
            rows.append(tokens)
    stg = STG(name, n_inputs, n_outputs, reset)
    for cube, src, dst, output in rows:
        stg.add_transition(cube, src, dst, output)
    if reset is not None:
        stg.reset_state = reset
    return stg


def read_kiss_string(text: str, name: str = "fsm") -> STG:
    import io

    return read_kiss(io.StringIO(text), name)


def write_kiss(stg: STG, stream: TextIO) -> None:
    stream.write(f".i {stg.n_inputs}\n.o {stg.n_outputs}\n")
    stream.write(f".s {stg.n_states}\n.p {len(stg.transitions)}\n")
    if stg.reset_state is not None:
        stream.write(f".r {stg.reset_state}\n")
    for t in stg.transitions:
        stream.write(f"{t.input_cube} {t.src} {t.dst} {t.output}\n")
    stream.write(".e\n")


# ----------------------------------------------------------------------
# Built-in benchmark suite
# ----------------------------------------------------------------------

_TRAFFIC = """
.i 2
.o 3
.r GREEN
# inputs: (car_waiting, timer_done); outputs: (green, yellow, red)
-0 GREEN GREEN 100
01 GREEN GREEN 100
11 GREEN YELLOW 010
-0 YELLOW YELLOW 010
-1 YELLOW RED 001
-0 RED RED 001
-1 RED GREEN 100
.e
"""

_HANDSHAKE = """
.i 2
.o 2
.r IDLE
# inputs: (req, ack); outputs: (busy, done) -- long waits in IDLE/WAIT
0- IDLE IDLE 00
1- IDLE SETUP 10
-- SETUP WAIT 10
-0 WAIT WAIT 10
-1 WAIT DONE 01
1- DONE DONE 01
0- DONE IDLE 00
.e
"""

_SEQ101 = """
.i 1
.o 1
.r S0
# Mealy detector for the serial pattern 101 (overlapping)
0 S0 S0 0
1 S0 S1 0
0 S1 S2 0
1 S1 S1 0
0 S2 S0 0
1 S2 S1 1
.e
"""

_GRAYCTR = """
.i 1
.o 2
.r G0
# 2-bit Gray-sequence counter with enable
0 G0 G0 00
1 G0 G1 01
0 G1 G1 01
1 G1 G2 11
0 G2 G2 11
1 G2 G3 10
0 G3 G3 10
1 G3 G0 00
.e
"""

_ARBITER = """
.i 2
.o 2
.r NONE
# round-robin 2-master bus arbiter; inputs (req0, req1), outputs (gnt0, gnt1)
00 NONE NONE 00
1- NONE M0 10
01 NONE M1 01
1- M0 M0 10
01 M0 M1 01
00 M0 NONE 00
-1 M1 M1 01
10 M1 M0 10
00 M1 NONE 00
.e
"""

_WAITER = """
.i 2
.o 1
.r SLEEP
# mostly-idle reactive controller: wakes on in0, works 3 cycles, sleeps
0- SLEEP SLEEP 0
1- SLEEP W1 1
-- W1 W2 1
-- W2 W3 1
-0 W3 SLEEP 0
-1 W3 W1 1
.e
"""

_DK_LIKE = """
.i 1
.o 2
.r A
# small dense machine in the style of MCNC dk27
0 A B 00
1 A C 01
0 B D 01
1 B A 10
0 C A 10
1 C D 11
0 D C 11
1 D B 00
.e
"""

_BBSSE_LIKE = """
.i 3
.o 2
.r ST0
# branching controller with a dominant idle loop
0-- ST0 ST0 00
1-0 ST0 ST1 01
1-1 ST0 ST2 10
--- ST1 ST3 01
--- ST2 ST3 10
-0- ST3 ST0 00
-1- ST3 ST4 11
--0 ST4 ST0 00
--1 ST4 ST1 01
.e
"""

_BENCHMARKS: Dict[str, str] = {
    "traffic": _TRAFFIC,
    "handshake": _HANDSHAKE,
    "seq101": _SEQ101,
    "grayctr": _GRAYCTR,
    "arbiter": _ARBITER,
    "waiter": _WAITER,
    "dk_like": _DK_LIKE,
    "bbsse_like": _BBSSE_LIKE,
}


def benchmark_names() -> List[str]:
    return sorted(_BENCHMARKS)


def benchmark(name: str) -> STG:
    """Load a built-in benchmark FSM by name."""
    try:
        text = _BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown FSM benchmark {name!r}; known: {benchmark_names()}"
        ) from None
    return read_kiss_string(text, name)


def random_stg(n_states: int, n_inputs: int, n_outputs: int,
               seed: int = 0, self_loop_bias: float = 0.0,
               name: Optional[str] = None) -> STG:
    """Random completely specified deterministic Mealy machine.

    ``self_loop_bias`` is the probability mass shifted toward staying
    in the current state, letting experiments dial in idle-dominated
    (gating-friendly) behaviour.
    """
    rng = random.Random(seed)
    stg = STG(name or f"rand{n_states}_{seed}", n_inputs, n_outputs)
    states = [f"s{i}" for i in range(n_states)]
    for s in states:
        stg.add_state(s)
    for s in states:
        for m in range(1 << n_inputs):
            cube = format(m, f"0{n_inputs}b")[::-1] if n_inputs else ""
            if rng.random() < self_loop_bias:
                dst = s
            else:
                dst = rng.choice(states)
            output = "".join(str(rng.randrange(2)) for _ in range(n_outputs))
            stg.add_transition(cube, s, dst, output)
    return stg
