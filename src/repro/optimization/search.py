"""Parallel candidate-evaluation executor for the optimization loops.

Every optimization pass in this package is an estimate/transform/
re-estimate loop (paper §IV): build candidate edits, score each by
re-estimation, keep the best.  PR 9's cone cache made each score
cheap; this module makes the *walk* scale — independent candidates
fan out over a persistent :class:`~concurrent.futures.\
ProcessPoolExecutor` whose workers warm-start from the shared
:mod:`repro.store` disk layer, so cone-cache entries and compiled
plans cross process boundaries and workers splice instead of
resimulating.

Contract
--------

:func:`evaluate_candidates` is the single entry point.  It guarantees:

- **Ordered merge.**  Results come back in candidate order,
  bit-identical to the serial walk, regardless of worker count or
  completion order.  (Candidate evaluations are independent and the
  cone cache is sound by construction, so scheduling cannot leak into
  results.)
- **Deterministic seeding.**  Candidate ``i`` receives
  ``seeding.child_seed(seed, i)`` via ``ctx.seed`` — the same spawn
  key every pool in the repo uses — independent of which worker runs
  it.
- **Serial fallback.**  ``workers <= 1``, a pool that cannot start, a
  job function that cannot pickle, or a worker that dies mid-sweep
  all degrade to in-process evaluation of the affected candidates.
  Never a silent drop: a failed job is re-run in-process, so genuine
  (deterministic) exceptions propagate exactly as the serial walk
  would raise them.
- **Stimulus ships once per worker, not once per candidate.**  The
  packed stimulus + extras are pickled a single time per sweep and
  transferred through ``multiprocessing.shared_memory`` when the
  numpy backend is up (one copy in the page cache, zero per-job
  bytes); the bignum-only fallback is one spool-file transfer cached
  per worker by content fingerprint.  Jobs carry only the fingerprint.

Knobs: every public pass entry point takes ``workers=N | "auto"``;
``None`` defers to ``REPRO_SEARCH_WORKERS`` (same grammar), default
serial.  ``"auto"`` is the CPU count.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro import obs
from repro import store as artifact_store
from repro.backend.core import numpy_available
from repro.util import seeding

__all__ = [
    "ENV_WORKERS", "SearchContext",
    "resolve_workers", "evaluate_candidates", "activity_job",
    "in_worker", "shutdown_pool",
]

#: Environment default for the ``workers`` knob (``N`` or ``auto``).
ENV_WORKERS = "REPRO_SEARCH_WORKERS"

#: Contexts at most this size are inlined into each job submission
#: instead of going through shared memory / a spool file (the pickle
#: header is cheaper than a segment for tiny payloads).
_INLINE_LIMIT = 16 * 1024

#: Worker-side context cache entries (keyed by content fingerprint).
_CTX_CACHE_ENTRIES = 4

#: Seconds to wait for the warm-up probe before declaring the pool
#: unusable and falling back to the serial walk.
_PROBE_TIMEOUT_S = 60.0


@dataclass
class SearchContext:
    """Per-sweep payload handed to every job function.

    ``stimuli`` maps names to packed stimulus objects (shipped once
    per worker); ``extras`` carries anything else the sweep shares
    (base circuits, weights, flags).  ``seed`` is this candidate's
    deterministic spawn-key seed, ``engine`` the resolved engine
    request.
    """

    stimuli: Dict[str, Any] = field(default_factory=dict)
    extras: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    engine: Optional[str] = None

    def stimulus(self, key: str = "stimulus") -> Any:
        return self.stimuli[key]


def resolve_workers(workers: Union[int, str, None] = None) -> int:
    """The effective worker count for a sweep.

    ``None`` defers to ``REPRO_SEARCH_WORKERS``; ``"auto"`` (either
    place) means the CPU count; anything unparseable means serial.
    Inside a pool worker the answer is always 1 — candidate jobs must
    never nest pools.
    """
    if _WORKER_STATE["in_worker"]:
        return 1
    if workers is None:
        workers = os.environ.get(ENV_WORKERS, "") or 1
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            return max(1, int(text))
        except ValueError:
            return 1
    return max(1, int(workers))


def in_worker() -> bool:
    """True inside a search-pool worker process."""
    return bool(_WORKER_STATE["in_worker"])


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

_WORKER_STATE: Dict[str, Any] = {"in_worker": False}
_CTX_CACHE: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()


def _init_worker(store_dir: Optional[str]) -> None:
    """Warm-start one pool worker.

    Point the worker at the sweep's shared disk store (cone-cache
    entries and compiled plans written by any process rehydrate here),
    start a fresh bounded in-process cone cache, and pre-import the
    hot modules so the first job measures estimation, not imports.
    """
    _WORKER_STATE["in_worker"] = True
    if store_dir:
        os.environ[artifact_store.ENV_DIR] = store_dir
        artifact_store.set_store(None)      # rebuild from env
    from repro.logic import incremental as inc
    inc.clear_cone_cache()
    import repro.logic.fastsim            # noqa: F401
    import repro.logic.fasttimer          # noqa: F401
    import repro.logic.simulate           # noqa: F401


def _materialize(ref: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-side context lookup: fingerprint cache, then transport."""
    fp = ref["fp"]
    hit = fp in _CTX_CACHE
    if hit:
        _CTX_CACHE.move_to_end(fp)
        payload = _CTX_CACHE[fp]
    else:
        kind = ref["kind"]
        if kind == "inline":
            blob = ref["data"]
        elif kind == "shm":
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(name=ref["name"])
            try:
                blob = bytes(seg.buf[:ref["size"]])
            finally:
                try:
                    # Attaching registers the segment with the resource
                    # tracker a second time (owner already tracks it);
                    # drop the duplicate or the tracker warns at exit.
                    from multiprocessing import resource_tracker
                    resource_tracker.unregister(seg._name,
                                                "shared_memory")
                except Exception:
                    pass
                seg.close()
        else:                                   # "file"
            with open(ref["path"], "rb") as fh:
                blob = fh.read()
        payload = pickle.loads(blob)
        _CTX_CACHE[fp] = payload
        while len(_CTX_CACHE) > _CTX_CACHE_ENTRIES:
            _CTX_CACHE.popitem(last=False)
    payload["_ctx_hit"] = hit
    return payload


def _run_job(fn: Callable[[Any, SearchContext], Any], candidate: Any,
             seed: Optional[int], engine: Optional[str],
             ref: Dict[str, Any]):
    """One candidate evaluation inside a worker; never raises.

    Failures come back tagged so the parent re-runs the candidate
    in-process — genuine exceptions then propagate exactly as the
    serial walk would raise them.
    """
    try:
        payload = _materialize(ref)
        ctx = SearchContext(stimuli=payload["stimuli"],
                            extras=payload["extras"],
                            seed=seed, engine=engine)
        result = fn(candidate, ctx)
        return ("ok", result,
                {"pid": os.getpid(), "ctx_hit": payload["_ctx_hit"]})
    except Exception as exc:
        return ("error", f"{type(exc).__name__}: {exc}", None)


def _probe(_: int) -> int:
    """Spawn-forcing no-op (workers are created lazily otherwise)."""
    return os.getpid()


# ----------------------------------------------------------------------
# Parent side: persistent pool + context shipping
# ----------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_KEY: Optional[tuple] = None
_POOL_STORE_TMP: Optional[tempfile.TemporaryDirectory] = None
_SPOOL_DIR: Optional[tempfile.TemporaryDirectory] = None
_SHIPPED: Dict[str, Dict[str, Any]] = {}
_SHM_SEGMENTS: Dict[str, Any] = {}
_ATEXIT_REGISTERED = False


def _pool_store_dir() -> str:
    """Disk store shared by the pool: the process store's root when it
    has one, else a pool-lifetime private directory.

    The parent's store object is never replaced — pools must not have
    global configuration side effects — but workers always get a disk
    layer, because cross-worker cone and plan sharing is the entire
    warm-start mechanism.
    """
    global _POOL_STORE_TMP
    st = artifact_store.get_store()
    if st.root is not None:
        return str(st.root)
    if _POOL_STORE_TMP is None:
        _POOL_STORE_TMP = tempfile.TemporaryDirectory(
            prefix="repro-search-store-")
    return _POOL_STORE_TMP.name


def shutdown_pool() -> None:
    """Tear down the persistent pool and every shipped context."""
    global _POOL, _POOL_KEY, _POOL_STORE_TMP
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_KEY = None
    for seg in _SHM_SEGMENTS.values():
        try:
            seg.close()
            seg.unlink()
        except Exception:
            pass
    _SHM_SEGMENTS.clear()
    _SHIPPED.clear()
    if _POOL_STORE_TMP is not None:
        _POOL_STORE_TMP.cleanup()
        _POOL_STORE_TMP = None


def _atexit_cleanup() -> None:   # pragma: no cover - interpreter exit
    try:
        shutdown_pool()
    except Exception:
        pass


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent pool, (re)created when shape or store changed."""
    global _POOL, _POOL_KEY, _ATEXIT_REGISTERED
    store_dir = _pool_store_dir()
    key = (workers, store_dir)
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
        _POOL = None
        _POOL_KEY = None
    if not _ATEXIT_REGISTERED:
        atexit.register(_atexit_cleanup)
        _ATEXIT_REGISTERED = True
    pool = ProcessPoolExecutor(max_workers=workers,
                               initializer=_init_worker,
                               initargs=(store_dir,))
    try:
        futs = [pool.submit(_probe, k) for k in range(workers)]
        for fut in futs:
            fut.result(timeout=_PROBE_TIMEOUT_S)
    except Exception:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    _POOL = pool
    _POOL_KEY = key
    return pool


def _mark_pool_broken() -> None:
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = None
    _POOL_KEY = None
    obs.inc("search.pool_broken")


def _ship_context(stimuli: Dict[str, Any],
                  extras: Dict[str, Any]) -> Dict[str, Any]:
    """Serialize the sweep context once; return a tiny job-side ref.

    Identical contexts (same content fingerprint) reuse the transfer
    already in flight — a pass sweeping the same stimulus twice ships
    zero new bytes, and every worker's fingerprint cache keeps its
    one deserialized copy across the whole sweep.
    """
    blob = pickle.dumps({"stimuli": stimuli, "extras": extras},
                        protocol=pickle.HIGHEST_PROTOCOL)
    fp = hashlib.sha256(blob).hexdigest()
    ref = _SHIPPED.get(fp)
    if ref is not None:
        return ref
    if len(blob) <= _INLINE_LIMIT:
        ref = {"kind": "inline", "fp": fp, "data": blob}
    elif numpy_available():
        # Lane arrays ride shared memory: one copy, mapped by every
        # worker, zero per-job transfer.
        try:
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(create=True, size=len(blob))
            seg.buf[:len(blob)] = blob
            _SHM_SEGMENTS[fp] = seg
            ref = {"kind": "shm", "fp": fp, "name": seg.name,
                   "size": len(blob)}
        except Exception:
            ref = None
    else:
        ref = None
    if ref is None:
        # Bignum fallback (or shm unavailable): one pickled transfer
        # through a spool file, cached per worker by fingerprint.
        global _SPOOL_DIR
        if _SPOOL_DIR is None:
            _SPOOL_DIR = tempfile.TemporaryDirectory(
                prefix="repro-search-ctx-")
        path = os.path.join(_SPOOL_DIR.name, fp + ".pkl")
        tmp = path + f".tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
        ref = {"kind": "file", "fp": fp, "path": path}
    _SHIPPED[fp] = ref
    obs.inc("search.ctx_shipped")
    obs.inc("search.ctx_bytes", len(blob))
    return ref


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------

def evaluate_candidates(fn: Callable[[Any, SearchContext], Any],
                        candidates: Sequence[Any], *,
                        stimuli: Optional[Dict[str, Any]] = None,
                        extras: Optional[Dict[str, Any]] = None,
                        workers: Union[int, str, None] = None,
                        engine: Optional[str] = None,
                        seed: Optional[int] = None,
                        label: str = "candidates") -> List[Any]:
    """Evaluate ``fn(candidate, ctx)`` for every candidate, in order.

    The scheduling contract is at the top of this module: ordered
    merge bit-identical to the serial walk, deterministic per-
    candidate seeds, serial fallback on any pool trouble.  ``fn`` must
    be a module-level callable (pickled by reference) and candidates
    must pickle; the shared ``stimuli``/``extras`` payload ships once
    per worker, not once per candidate.
    """
    candidates = list(candidates)
    stimuli = stimuli or {}
    extras = extras or {}
    n_workers = resolve_workers(workers)
    seeds = seeding.spawn_seeds(seed, len(candidates))

    def _serial_one(i: int) -> Any:
        ctx = SearchContext(stimuli=stimuli, extras=extras,
                            seed=seeds[i], engine=engine)
        return fn(candidates[i], ctx)

    with obs.span("search.map", label=label, candidates=len(candidates),
                  workers=n_workers) as sp:
        obs.inc("search.jobs", len(candidates))
        if n_workers <= 1 or len(candidates) < 2:
            obs.inc("search.serial_jobs", len(candidates))
            sp.set("mode", "serial")
            return [_serial_one(i) for i in range(len(candidates))]

        try:
            pool = _get_pool(n_workers)
        except Exception:
            obs.inc("search.fallbacks")
            sp.set("mode", "serial-fallback")
            return [_serial_one(i) for i in range(len(candidates))]

        with obs.span("search.dispatch", jobs=len(candidates)):
            ref = _ship_context(stimuli, extras)
            try:
                futures = [pool.submit(_run_job, fn, cand, seeds[i],
                                       engine, ref)
                           for i, cand in enumerate(candidates)]
            except Exception:
                # Unpicklable job function or candidate: nothing was
                # reliably enqueued — walk the whole list in-process.
                _mark_pool_broken()
                obs.inc("search.fallbacks")
                sp.set("mode", "serial-fallback")
                return [_serial_one(i) for i in range(len(candidates))]

        sp.set("mode", "parallel")
        obs.inc("search.parallel_jobs", len(candidates))
        results: List[Any] = [None] * len(candidates)
        with obs.span("search.merge", jobs=len(futures)):
            for i, fut in enumerate(futures):
                outcome = None
                try:
                    outcome = fut.result()
                except Exception:
                    # Dead worker / broken pool: every still-pending
                    # future raises; each affected candidate degrades
                    # to an in-process evaluation below.
                    _mark_pool_broken()
                if outcome is not None and outcome[0] == "ok":
                    results[i] = outcome[1]
                    meta = outcome[2] or {}
                    obs.inc("search.ctx_hits" if meta.get("ctx_hit")
                            else "search.ctx_misses")
                else:
                    obs.inc("search.inprocess_retries")
                    results[i] = _serial_one(i)
        return results


# ----------------------------------------------------------------------
# The common job: activity of one candidate circuit
# ----------------------------------------------------------------------

def activity_job(candidate: Any, ctx: SearchContext):
    """Activity report for one candidate circuit.

    ``candidate`` is a circuit or a ``(circuit, stimulus_key)`` pair
    (the key selects from ``ctx.stimuli``; default ``"stimulus"``).
    ``ctx.extras["incremental"]`` (default True) routes through the
    cone cache — in a pool worker that cache warm-starts from the
    sweep's shared disk store and repopulates it for later candidates;
    either route returns the bit-identical report.
    """
    if isinstance(candidate, tuple):
        circuit, key = candidate
    else:
        circuit, key = candidate, "stimulus"
    vectors = ctx.stimuli[key]
    if ctx.extras.get("incremental", True):
        from repro.logic import incremental as inc
        return inc.collect_activity_incremental(circuit, vectors,
                                                engine=ctx.engine)
    from repro.logic.simulate import collect_activity
    return collect_activity(circuit, vectors, engine=ctx.engine)
