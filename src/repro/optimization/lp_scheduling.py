"""Low-power operation scheduling (Section III-D).

- :func:`activity_aware_schedule` -- Musoll-Cortadella [60]: a list
  scheduler whose priority favours placing operations that share an
  input operand consecutively on the same functional unit, so FU
  inputs do not change between activations,
- :func:`fu_input_switching`     -- the cost both schedulers are
  judged by: expected bit switching at FU inputs under a greedy
  in-order binding and high-level input statistics,
- :func:`power_management_schedule` -- Monteiro et al. [63]: for each
  mux, schedule the control cone ALAP-before and the data cones
  ASAP-after the decision, so the unselected cone's units can be shut
  down; reports which muxes are power-manageable and the expected
  fraction of operation executions saved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.backend.core import default_engine, resolve_engine
from repro.cdfg.graph import Cdfg, CdfgNode
from repro.cdfg.schedule import Schedule, alap, asap, list_schedule
from repro.rtl import faststreams
from repro.util.bits import hamming


# ----------------------------------------------------------------------
# Musoll-Cortadella: operand-sharing-aware scheduling
# ----------------------------------------------------------------------

def shared_operand_pairs(cdfg: Cdfg) -> Dict[Tuple[int, int], int]:
    """Number of shared operand sources for every same-kind op pair."""
    pairs: Dict[Tuple[int, int], int] = {}
    ops = cdfg.operations()
    for i, a in enumerate(ops):
        for b in ops[i + 1:]:
            if a.kind != b.kind:
                continue
            shared = len(set(a.operands) & set(b.operands))
            if shared:
                pairs[(a.uid, b.uid)] = shared
    return pairs


def activity_aware_schedule(cdfg: Cdfg, resources: Dict[str, int],
                            delays: Optional[Dict[str, int]] = None
                            ) -> Schedule:
    """List scheduling with dynamic operand-sharing affinity.

    At every step, among ready operations of a kind with a free unit,
    the scheduler prefers the one sharing the most operand sources
    with the operation most recently executed on that kind's units --
    so a shared FU sees repeated operands in consecutive activations
    (Musoll-Cortadella's objective).  Criticality breaks ties, keeping
    the latency of plain list scheduling.
    """
    from repro.cdfg.schedule import UNIT_DELAYS, _criticality

    delays = dict(delays or UNIT_DELAYS)
    criticality = _criticality(cdfg, delays)
    ops = cdfg.operations()
    pending = {n.uid for n in ops}
    finish: Dict[int, int] = {}
    steps: Dict[int, int] = {}
    busy: Dict[str, int] = {}
    running: List[Tuple[int, str, int]] = []
    last_operands: Dict[str, Set[int]] = {}
    step = 0
    while pending:
        step += 1
        for f, kind, uid in list(running):
            if f < step:
                busy[kind] -= 1
                running.remove((f, kind, uid))
        ready = []
        for uid in pending:
            node = cdfg.node(uid)
            ok = all(not cdfg.node(op).is_operation()
                     or (op not in pending and finish[op] < step)
                     for op in node.operands)
            if ok:
                ready.append(uid)

        def affinity(uid: int) -> int:
            node = cdfg.node(uid)
            shared = last_operands.get(node.kind)
            if not shared:
                return 0
            return len(set(node.operands) & shared)

        ready.sort(key=lambda uid: (-affinity(uid),
                                    -criticality.get(uid, 0.0)))
        for uid in ready:
            kind = cdfg.node(uid).kind
            limit = resources.get(kind)
            if limit is not None and busy.get(kind, 0) >= limit:
                continue
            steps[uid] = step
            f = step + delays.get(kind, 1) - 1
            finish[uid] = f
            busy[kind] = busy.get(kind, 0) + 1
            running.append((f, kind, uid))
            pending.discard(uid)
            last_operands[kind] = set(cdfg.node(uid).operands)
        if step > 10 * (len(ops) + 1) * max(delays.values()):
            raise RuntimeError("scheduling failed to converge")
    return Schedule(cdfg, steps, delays)


def greedy_binding(cdfg: Cdfg, schedule: Schedule,
                   resources: Dict[str, int]) -> Dict[int, Tuple[str, int]]:
    """Bind each operation to (kind, unit index), in-order per step.

    Prefers the unit that last executed an operation sharing an
    operand (operand sharing realizes the scheduler's intent).
    """
    binding: Dict[int, Tuple[str, int]] = {}
    last_operands: Dict[Tuple[str, int], Set[int]] = {}
    steps = sorted({schedule.steps[n.uid] for n in cdfg.operations()})
    for step in steps:
        busy: Set[Tuple[str, int]] = set()
        nodes = [n for n in cdfg.operations()
                 if schedule.steps[n.uid] == step]
        for node in nodes:
            n_units = resources.get(node.kind, 1)
            candidates = [(node.kind, k) for k in range(n_units)
                          if (node.kind, k) not in busy]
            if not candidates:
                raise ValueError("binding infeasible: resource overflow")
            operand_set = set(node.operands)

            def affinity(unit: Tuple[str, int]) -> int:
                return len(operand_set & last_operands.get(unit, set()))

            unit = max(candidates, key=affinity)
            binding[node.uid] = unit
            busy.add(unit)
            last_operands[unit] = operand_set
    return binding


def fu_input_switching(cdfg: Cdfg, schedule: Schedule,
                       binding: Dict[int, Tuple[str, int]],
                       input_streams: Dict[str, Sequence[int]],
                       engine: Optional[str] = None) -> float:
    """Total FU-input bit switching per CDFG iteration.

    Replays the high-level simulation: each FU sees, in control-step
    order, the operand words of the operations bound to it; switching
    is the Hamming distance between consecutive operand pairs on the
    same unit, averaged over simulation cycles.

    The packed engine packs each operand trace once and charges one
    xor+popcount per consecutive operand pair instead of looping over
    cycles; totals are integer-identical to the reference.
    """
    traces = cdfg.simulate(input_streams)
    cycles = len(next(iter(traces.values()))) if traces else 0
    if cycles == 0:
        return 0.0

    per_unit: Dict[Tuple[str, int], List[CdfgNode]] = {}
    for node in cdfg.operations():
        per_unit.setdefault(binding[node.uid], []).append(node)
    for nodes in per_unit.values():
        nodes.sort(key=lambda n: schedule.steps[n.uid])

    total = 0.0
    engine = resolve_engine(engine, default_engine(), cycles=cycles)
    if engine != "reference":
        backend = "numpy" if engine == "numpy" else None
        packs: Dict[int, int] = {}

        def packed(uid: int) -> int:
            if uid not in packs:
                packs[uid] = faststreams.pack_words(
                    traces[uid][:cycles], cdfg.width)
            return packs[uid]

        for unit, nodes in per_unit.items():
            for prev, node in zip(nodes, nodes[1:]):
                for a, b in zip(prev.operands[:2], node.operands[:2]):
                    total += faststreams.cross_hamming(
                        traces[a][:cycles], traces[b][:cycles],
                        cdfg.width, packed(a), packed(b),
                        backend=backend)
        return total / cycles
    for unit, nodes in per_unit.items():
        for t in range(cycles):
            prev_words: Optional[List[int]] = None
            for node in nodes:
                words = [traces[op][t] for op in node.operands[:2]]
                if prev_words is not None:
                    for a, b in zip(prev_words, words):
                        total += hamming(a, b)
                prev_words = words
    return total / cycles


# ----------------------------------------------------------------------
# Monteiro et al.: scheduling that enables power management
# ----------------------------------------------------------------------

@dataclass
class MuxShutdownPlan:
    """One power-manageable multiplexor and its shutdown sets."""

    mux_uid: int
    control_cone: List[int]     # N_C (scheduled ALAP, early)
    zero_cone: List[int]        # N_0 (ASAP after decision)
    one_cone: List[int]         # N_1


@dataclass
class PowerManagementReport:
    schedule: Schedule
    plans: List[MuxShutdownPlan]
    expected_saved_ops: float   # expected op executions disabled/iter

    @property
    def manageable_muxes(self) -> int:
        return len(self.plans)


def _transitive_fanin(cdfg: Cdfg, root: int) -> Set[int]:
    seen: Set[int] = set()
    stack = [root]
    while stack:
        uid = stack.pop()
        for op in cdfg.node(uid).operands:
            node = cdfg.node(op)
            if node.is_operation() and op not in seen:
                seen.add(op)
                stack.append(op)
    return seen


def power_management_schedule(cdfg: Cdfg,
                              latency: Optional[int] = None,
                              select_prob: Optional[Dict[int, float]]
                              = None) -> PowerManagementReport:
    """Monteiro's PM-enabling scheduling of the CDFG's multiplexors.

    Muxes are processed bottom-up.  For each, the cones N_0 / N_1 / N_C
    are formed (shared nodes removed); if the control cone can finish
    (ALAP) before the data cones start (ASAP) within the latency
    budget, the mux is power manageable: per iteration, the unselected
    cone's operations are disabled.  ``select_prob[mux]`` is the
    probability the control input is 1 (default 0.5).
    """
    s_asap = asap(cdfg)
    if latency is None:
        latency = s_asap.latency + 1      # one step of slack
    s_alap = alap(cdfg, latency)

    select_prob = select_prob or {}
    plans: List[MuxShutdownPlan] = []
    muxes = [n for n in cdfg.operations() if n.kind == "mux"]
    # Bottom-up: deeper muxes first.
    muxes.sort(key=lambda n: -s_asap.steps[n.uid])

    steps = dict(s_asap.steps)
    expected_saved = 0.0
    for mux in muxes:
        d0, d1, ctrl = mux.operands
        n0 = _transitive_fanin(cdfg, d0) | (
            {d0} if cdfg.node(d0).is_operation() else set())
        n1 = _transitive_fanin(cdfg, d1) | (
            {d1} if cdfg.node(d1).is_operation() else set())
        nc = _transitive_fanin(cdfg, ctrl) | (
            {ctrl} if cdfg.node(ctrl).is_operation() else set())
        shared = n0 & n1
        n0 -= shared | nc
        n1 -= shared | nc
        nc -= shared
        if not (n0 or n1) or not nc:
            continue
        # Control cone as early as possible (ASAP); data cones shifted
        # uniformly to start after the decision.  The mux is power
        # manageable iff the shifted data nodes still respect their
        # ALAP bounds (no node's required start exceeds its latest
        # feasible start) -- the paper's ASAP/ALAP conflict test.
        control_finish = max(s_asap.finish(u) for u in nc)
        data = n0 | n1
        data_start = min(s_asap.steps[u] for u in data)
        shift = max(0, control_finish + 1 - data_start)
        if any(s_asap.steps[u] + shift > s_alap.steps[u] for u in data):
            continue
        for u in data:
            steps[u] = max(steps[u], s_asap.steps[u] + shift)
        p1 = select_prob.get(mux.uid, 0.5)
        expected_saved += (1.0 - p1) * len(n1) + p1 * len(n0)
        plans.append(MuxShutdownPlan(mux.uid, sorted(nc), sorted(n0),
                                     sorted(n1)))

    final = Schedule(cdfg, steps, s_asap.delays)
    # Repair any precedence violations introduced by pushing nodes.
    changed = True
    while changed:
        changed = False
        for node in cdfg.operations():
            for op in node.operands:
                if cdfg.node(op).is_operation() and \
                        final.steps[node.uid] <= final.finish(op):
                    final.steps[node.uid] = final.finish(op) + 1
                    changed = True
    return PowerManagementReport(final, plans, expected_saved)
