"""Gated-clock synthesis for FSMs (Section III-I, [101]-[103]).

Architecture of Fig. 7: an activation function Fa detects cycles in
which neither the state nor the outputs change (idle conditions) and
stops the local clock for the whole machine.  Fa is synthesized
symbolically from the STG's self-loop conditions:

    Fa(inputs, state) = 1  iff  delta(state, inputs) = state
                              and lambda(state, inputs) stable

Because the framework's netlists model clock energy explicitly
(`Circuit.clock_capacitance`), gating is evaluated by building the
gated design (Fa network + hold-muxes emulating the stopped clock) and
charging clock power only on enabled cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.fsm.encoding import Encoding, binary_encoding
from repro.fsm.stg import STG
from repro.fsm.synthesis import _cube_minterms, synthesize_fsm
from repro.logic import gates as gatelib
from repro.logic.netlist import Circuit
from repro.logic.simulate import collect_activity
from repro.logic.synthesis import InverterCache, synthesize_cover
from repro.twolevel.quine_mccluskey import minimize


def idle_onset(stg: STG, encoding: Encoding) -> List[int]:
    """Minterms (inputs, state-code) on which the machine is idle.

    Idle = self-loop transition; outputs in a Mealy self-loop are
    constant for the cycle, so gating the clock holds them too.
    """
    complete = stg.completed()
    ni = complete.n_inputs
    onset: List[int] = []
    for t in complete.transitions:
        if t.src != t.dst:
            continue
        code = encoding.codes[t.src]
        for m in _cube_minterms(t.input_cube):
            onset.append(m | (code << ni))
    return onset


@dataclass
class GatedClockReport:
    idle_fraction: float          # fraction of cycles with clock stopped
    original_power: float
    gated_power: float
    fa_gates: int                 # size of the activation network

    @property
    def saving(self) -> float:
        if self.original_power == 0:
            return 0.0
        return 1.0 - self.gated_power / self.original_power


def build_gated_fsm(stg: STG, encoding: Optional[Encoding] = None,
                    simplify_fraction: float = 1.0,
                    name: Optional[str] = None) -> Tuple[Circuit, str]:
    """Synthesize the FSM with a gated-clock mechanism.

    ``simplify_fraction`` < 1 drops the least-probable idle minterms
    from Fa (the paper's simplified activation function that trades
    stopping efficiency for a smaller Fa).  Returns (circuit, fa_net):
    the clock-enable condition is ~fa.
    """
    encoding = encoding or binary_encoding(stg)
    base = synthesize_fsm(stg, encoding, name=name or f"{stg.name}_gated")
    onset = idle_onset(stg, encoding)
    if simplify_fraction < 1.0 and onset:
        keep = max(1, int(len(onset) * simplify_fraction))
        onset = onset[:keep]

    complete = stg.completed()
    ni, nb = complete.n_inputs, encoding.n_bits
    used = {encoding.codes[s] for s in complete.states}
    dc = [m | (c << ni) for c in range(1 << nb) if c not in used
          for m in range(1 << ni)]
    cover = minimize(ni + nb, onset, dc)

    circuit = base
    input_nets = [f"in{i}" for i in range(ni)]
    state_nets = [f"sb{j}" for j in range(nb)]
    synthesize_cover(cover, input_nets + state_nets, "fa",
                     circuit=circuit, inverters=InverterCache(circuit))

    # Stop the state register's clock when fa = 1: the clock enable
    # is ~fa.  (The latch L of Fig. 7 filters glitches on the enable;
    # its always-on clock load is charged in the evaluation.)
    enable = circuit.add_gate("INV", ["fa"], output="clk_en")
    for latch in circuit.latches:
        latch.enable = enable
    circuit.invalidate()
    return circuit, "fa"


def evaluate_clock_gating(stg: STG, encoding: Optional[Encoding] = None,
                          cycles: int = 400, seed: int = 0,
                          bit_probs: Optional[Sequence[float]] = None,
                          simplify_fraction: float = 1.0,
                          engine: Optional[str] = None,
                          incremental: bool = True,
                          cross_check: bool = False,
                          workers: Union[int, str, None] = None
                          ) -> GatedClockReport:
    """Compare plain vs gated synthesis of the same machine.

    The gated design pays for the Fa network's switching and for one
    always-clocked glitch-filter latch (the L of Fig. 7); in exchange
    the state register's clock only toggles on enabled cycles (the
    load-enable latch model accounts for this automatically).  The
    combinational logic still sees input changes — clock gating stops
    the clock, not the datapath.

    With ``incremental`` (the default) both measurements run through
    the cone cache (:mod:`repro.logic.incremental`): across a
    ``simplify_fraction`` sweep the plain machine and every cone the
    edit doesn't reach are spliced from cache instead of resimulated,
    bit-identically.  ``workers`` fans the plain/gated measurements
    over the shared search pool.  ``cross_check`` additionally reruns
    the full engine and asserts exact equality (used by the bench
    gates).
    """
    return sweep_clock_gating(stg, [simplify_fraction],
                              encoding=encoding, cycles=cycles,
                              seed=seed, bit_probs=bit_probs,
                              engine=engine, incremental=incremental,
                              cross_check=cross_check,
                              workers=workers)[0]


def gating_stimulus(stg: STG, cycles: int = 400, seed: int = 0,
                    bit_probs: Optional[Sequence[float]] = None):
    """The packed stimulus :func:`evaluate_clock_gating` draws."""
    from repro.logic.fastsim import PackedVectors

    rng = random.Random(seed)
    probs = list(bit_probs) if bit_probs else [0.5] * stg.n_inputs
    input_names = [f"in{i}" for i in range(stg.n_inputs)]
    vectors = [{name: int(rng.random() < probs[i])
                for i, name in enumerate(input_names)}
               for _ in range(cycles)]
    return PackedVectors.from_vectors(input_names, vectors)


def sweep_clock_gating(stg: STG, fractions: Sequence[float],
                       encoding: Optional[Encoding] = None,
                       cycles: int = 400, seed: int = 0,
                       bit_probs: Optional[Sequence[float]] = None,
                       engine: Optional[str] = None,
                       incremental: bool = True,
                       cross_check: bool = False,
                       workers: Union[int, str, None] = None
                       ) -> List[GatedClockReport]:
    """One :class:`GatedClockReport` per ``simplify_fraction``.

    The candidate loop of the pass: the plain machine plus every
    gated variant are measured in a single fan-out over the shared
    search pool (:mod:`repro.optimization.search`), so a wide
    fraction sweep keeps all workers busy while the cone cache
    splices the unchanged logic.  Reports are bit-identical to
    calling :func:`evaluate_clock_gating` per fraction.
    """
    from repro.logic import incremental as inc
    from repro.optimization import search

    encoding = encoding or binary_encoding(stg)
    packed = gating_stimulus(stg, cycles=cycles, seed=seed,
                             bit_probs=bit_probs)

    plain = synthesize_fsm(stg, encoding)
    variants = [build_gated_fsm(stg, encoding, simplify_fraction=f)
                for f in fractions]
    reports = search.evaluate_candidates(
        search.activity_job,
        [plain] + [gated for gated, _fa in variants],
        stimuli={"stimulus": packed},
        extras={"incremental": incremental},
        workers=workers, engine=engine, label="clock_gating")
    plain_power = reports[0].average_power()

    out: List[GatedClockReport] = []
    for (gated, fa_net), gated_report in zip(variants, reports[1:]):
        fa_gate_count = gated.gate_count() - plain.gate_count() - 1
        # Fa's ones count is the idle-cycle count — same number the
        # old scalar `simulate` walk summed, without the extra
        # simulation.
        idle_cycles = gated_report.ones.get(fa_net, 0)
        idle_fraction = idle_cycles / max(1, cycles)

        if cross_check:
            full = collect_activity(gated, packed, engine=engine)
            if not inc.reports_equal(gated_report, full):
                raise AssertionError("incremental gated-clock report "
                                     "diverged from full resimulation")

        # The glitch-filter latch L rides the free-running clock.
        gated_report.clock_capacitance += \
            2.0 * gatelib.DFF_CLOCK_CAP * max(0, cycles - 1)
        out.append(GatedClockReport(
            idle_fraction=idle_fraction,
            original_power=plain_power,
            gated_power=gated_report.average_power(),
            fa_gates=max(0, fa_gate_count),
        ))
    return out
