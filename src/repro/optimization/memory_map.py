"""Memory mapping and hierarchy exploration for low power
(Section III-A, [52]-[57]).

Two surveyed directions:

- :func:`optimize_array_placement` -- Panda-Dutt memory mapping
  [53], [54]: choose base addresses for data arrays so the address
  stream of a known access pattern toggles fewer address-bus lines
  (off-chip drivers and decode logic dominate),
- :class:`MemoryHierarchy` / :func:`explore_data_reuse` -- the
  Catthoor methodology [52], [56], [57]: given loop-nest access
  counts, decide which arrays (or reused blocks) to copy into small
  low-energy buffers; higher hierarchy levels are cheap per access but
  capacity-limited, so the optimizer assigns the hottest data upward.

Access patterns are modeled as the sequence of (array, index)
references a compiled loop nest would emit; energy uses the parametric
memory model of :mod:`repro.estimation.parametric`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.core import default_engine, resolve_engine
from repro.estimation.parametric import MemoryArray
from repro.rtl import faststreams
from repro.util.bits import hamming


def bus_transitions(addresses: Sequence[int],
                    engine: Optional[str] = None) -> int:
    """Total address-bus line toggles over an access trace."""
    engine = resolve_engine(engine, default_engine(),
                            cycles=len(addresses))
    if engine != "reference":
        width = max((a.bit_length() for a in addresses), default=0) or 1
        return faststreams.transition_count(
            addresses, width,
            backend="numpy" if engine == "numpy" else None)
    total = 0
    for a, b in zip(addresses, addresses[1:]):
        total += hamming(a, b)
    return total


@dataclass(frozen=True)
class Access:
    """One memory reference of a traced loop nest."""

    array: str
    index: int
    is_write: bool = False


# ----------------------------------------------------------------------
# Panda-Dutt address-bus-aware array placement
# ----------------------------------------------------------------------

@dataclass
class PlacementResult:
    bases: Dict[str, int]
    transitions: int
    baseline_transitions: int

    @property
    def saving(self) -> float:
        if self.baseline_transitions == 0:
            return 0.0
        return 1.0 - self.transitions / self.baseline_transitions


def _addresses(accesses: Sequence[Access],
               bases: Dict[str, int]) -> List[int]:
    return [bases[a.array] + a.index for a in accesses]


def optimize_array_placement(accesses: Sequence[Access],
                             array_sizes: Dict[str, int],
                             alignment: int = 16,
                             candidate_slots: int = 8
                             ) -> PlacementResult:
    """Greedy base-address assignment minimizing address-bus toggles.

    The paper extracts the access pattern at compile time and places
    arrays in memory accordingly.  Arrays are placed one at a time
    (most-accessed first); each tries a set of aligned candidate bases
    after the already-placed arrays and keeps the one minimizing the
    toggles of the partial trace, exactly the greedy flavour of [53].
    """
    order = sorted(array_sizes,
                   key=lambda a: -sum(1 for x in accesses
                                      if x.array == a))
    # Baseline: declaration-order contiguous placement.
    baseline_bases: Dict[str, int] = {}
    cursor = 0
    for array in array_sizes:
        baseline_bases[array] = cursor
        cursor += _aligned(array_sizes[array], alignment)
    baseline = bus_transitions(_addresses(accesses, baseline_bases))

    placed: Dict[str, int] = {}
    regions: List[Tuple[int, int]] = []   # (base, end) occupied

    def conflicts(base: int, size: int) -> bool:
        end = base + size
        return any(not (end <= lo or base >= hi)
                   for lo, hi in regions)

    for array in order:
        size = _aligned(array_sizes[array], alignment)
        candidates: List[int] = []
        slot = 0
        while len(candidates) < candidate_slots:
            if not conflicts(slot, size):
                candidates.append(slot)
            slot += alignment
        best_base = candidates[0]
        best_cost: Optional[int] = None
        for base in candidates:
            trial = dict(placed)
            trial[array] = base
            partial = [a for a in accesses if a.array in trial]
            cost = bus_transitions(_addresses(partial, trial))
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_base = base
        placed[array] = best_base
        regions.append((best_base, best_base + size))

    return PlacementResult(
        bases=placed,
        transitions=bus_transitions(_addresses(accesses, placed)),
        baseline_transitions=baseline,
    )


def _aligned(size: int, alignment: int) -> int:
    return ((size + alignment - 1) // alignment) * alignment


# ----------------------------------------------------------------------
# Catthoor-style memory hierarchy / data-reuse exploration
# ----------------------------------------------------------------------

@dataclass
class MemoryLevel:
    """One level of the hierarchy: capacity plus per-access energy."""

    name: str
    capacity: int
    read_energy: float
    write_energy: float

    @classmethod
    def from_parametric(cls, name: str, words_log2: int,
                        word_bits: int = 16) -> "MemoryLevel":
        array = MemoryArray(n=words_log2,
                            k=MemoryArray(words_log2, 0, word_bits)
                            .optimal_aspect(),
                            word_bits=word_bits)
        return cls(name, 1 << words_log2, array.read_energy(),
                   array.write_energy())


@dataclass
class ArrayProfile:
    """Access statistics of one array over the loop nest."""

    name: str
    size: int
    reads: int
    writes: int

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


@dataclass
class HierarchyAssignment:
    placement: Dict[str, str]       # array -> level name
    energy: float
    baseline_energy: float          # everything in the big memory

    @property
    def saving(self) -> float:
        if self.baseline_energy == 0:
            return 0.0
        return 1.0 - self.energy / self.baseline_energy


def explore_data_reuse(profiles: Sequence[ArrayProfile],
                       levels: Sequence[MemoryLevel]
                       ) -> HierarchyAssignment:
    """Assign arrays to hierarchy levels minimizing access energy.

    Levels are ordered small/cheap first; the largest level is the
    backing store (unbounded for the purposes of the copy decision).
    Copying an array into a higher level costs one read from the
    backing store plus one write per element (the data-reuse copy the
    methodology accounts for).  Exhaustive over arrays x levels for
    the small design-space sizes the experiments use, matching the
    "formalized methodology ... for the choice of the proper memory
    hierarchy".
    """
    if not levels:
        raise ValueError("need at least one memory level")
    backing = levels[-1]

    def baseline() -> float:
        return sum(p.reads * backing.read_energy
                   + p.writes * backing.write_energy
                   for p in profiles)

    best: Optional[HierarchyAssignment] = None
    options = [list(range(len(levels)))] * len(profiles)
    for combo in itertools.product(*options):
        used: Dict[int, int] = {}
        feasible = True
        for p, lvl in zip(profiles, combo):
            used[lvl] = used.get(lvl, 0) + p.size
            if used[lvl] > levels[lvl].capacity:
                feasible = False
                break
        if not feasible:
            continue
        energy = 0.0
        for p, lvl in zip(profiles, combo):
            level = levels[lvl]
            energy += p.reads * level.read_energy \
                + p.writes * level.write_energy
            if level is not backing:
                # Copy-in cost from the backing store.
                energy += p.size * (backing.read_energy
                                    + level.write_energy)
        if best is None or energy < best.energy:
            best = HierarchyAssignment(
                placement={p.name: levels[lvl].name
                           for p, lvl in zip(profiles, combo)},
                energy=energy,
                baseline_energy=baseline(),
            )
    assert best is not None
    return best


def loop_nest_accesses(arrays: Dict[str, int], pattern: str = "fir",
                       iterations: int = 64) -> List[Access]:
    """Canned access traces of the DSP loop shapes the papers use."""
    accesses: List[Access] = []
    names = list(arrays)
    if pattern == "fir":
        x, y = names[0], names[-1]
        taps = min(4, arrays[x])
        for i in range(iterations):
            for k in range(taps):
                accesses.append(Access(x, (i + k) % arrays[x]))
            accesses.append(Access(y, i % arrays[y], is_write=True))
    elif pattern == "interleaved":
        for i in range(iterations):
            for name in names:
                accesses.append(Access(name, i % arrays[name]))
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    return accesses
