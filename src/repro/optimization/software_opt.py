"""Software optimization for low power (Section III-A).

- :func:`cold_schedule` -- Su et al.'s cold scheduling [6]: a list
  scheduler over a basic block's data-dependence DAG that, among
  ready instructions, picks the one with the cheapest transition cost
  (instruction-bus Hamming distance) from the previously emitted
  instruction,
- :func:`energy_aware_selection` -- instruction selection between
  equivalent sequences by measured energy (the "modify the cost
  function of existing code optimizers" approach),
- memory-access minimization (Fig. 2) lives in
  :mod:`repro.software.programs` (``memory_unoptimized`` /
  ``memory_optimized``) and is exercised by bench F2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.software.isa import Instruction, encode, hamming32
from repro.software.machine import Machine


def dependence_dag(block: Sequence[Instruction]
                   ) -> Dict[int, Set[int]]:
    """index -> set of earlier indices it depends on (RAW/WAR/WAW).

    Memory operations are conservatively serialized among themselves.
    """
    deps: Dict[int, Set[int]] = {i: set() for i in range(len(block))}
    last_write: Dict[int, int] = {}
    last_reads: Dict[int, List[int]] = {}
    last_mem: Optional[int] = None
    for i, instr in enumerate(block):
        reads: List[int] = []
        writes: List[int] = []
        if instr.op in ("ADD", "SUB", "AND", "OR", "XOR", "MUL"):
            reads = [instr.rs, instr.rt]
            writes = [instr.rd]
        elif instr.op in ("ADDI", "SLL"):
            reads = [instr.rs]
            writes = [instr.rd]
        elif instr.op == "LD":
            reads = [instr.rs]
            writes = [instr.rd]
        elif instr.op == "ST":
            reads = [instr.rs, instr.rd]
        for r in reads:
            if r in last_write:
                deps[i].add(last_write[r])          # RAW
        for w in writes:
            if w in last_write:
                deps[i].add(last_write[w])          # WAW
            for reader in last_reads.get(w, []):
                deps[i].add(reader)                  # WAR
        if instr.op in ("LD", "ST"):
            if last_mem is not None:
                deps[i].add(last_mem)
            last_mem = i
        for w in writes:
            if w:   # r0 writes are no-ops
                last_write[w] = i
                last_reads[w] = []
        for r in reads:
            last_reads.setdefault(r, []).append(i)
        deps[i].discard(i)
    return deps


def bus_transition_cost(block: Sequence[Instruction]) -> int:
    """Total instruction-bus toggles of a straight-line block."""
    total = 0
    prev: Optional[int] = None
    for instr in block:
        word = encode(instr)
        if prev is not None:
            total += hamming32(prev, word)
        prev = word
    return total


def cold_schedule(block: Sequence[Instruction],
                  priority_window: int = 0) -> List[Instruction]:
    """Reorder a basic block to minimize instruction-bus switching.

    Greedy list scheduling: at each step, the ready instruction with
    the minimum Hamming distance from the previously emitted encoding
    is selected (ties to original order, preserving semantics via the
    dependence DAG).
    """
    deps = dependence_dag(block)
    remaining = set(range(len(block)))
    emitted: List[Instruction] = []
    prev_word: Optional[int] = None
    while remaining:
        ready = [i for i in remaining
                 if not (deps[i] & remaining)]
        if not ready:      # pragma: no cover - DAG is acyclic
            raise RuntimeError("no ready instruction")

        def cost(i: int) -> Tuple[int, int]:
            word = encode(block[i])
            toggles = hamming32(prev_word, word) \
                if prev_word is not None else 0
            return (toggles, i)

        chosen = min(ready, key=cost)
        remaining.discard(chosen)
        emitted.append(block[chosen])
        prev_word = encode(block[chosen])
    del priority_window
    return emitted


@dataclass
class ColdSchedulingReport:
    original_toggles: int
    scheduled_toggles: int
    original_energy: float
    scheduled_energy: float
    equivalent: bool

    @property
    def toggle_reduction(self) -> float:
        if self.original_toggles == 0:
            return 0.0
        return 1.0 - self.scheduled_toggles / self.original_toggles


def evaluate_cold_scheduling(block: Sequence[Instruction],
                             check_registers: Sequence[int] = range(1, 16),
                             memory_init: Optional[Sequence[int]] = None
                             ) -> ColdSchedulingReport:
    """Reorder, verify architectural equivalence, and measure energy."""
    block = list(block)
    scheduled = cold_schedule(block)

    def run(program: Sequence[Instruction]) -> Tuple[Machine, object]:
        machine = Machine()
        if memory_init:
            machine.load_memory(0, list(memory_init))
        stats = machine.run(list(program) + [Instruction("HALT")])
        return machine, stats

    m1, s1 = run(block)
    m2, s2 = run(scheduled)
    equivalent = all(m1.registers[r] == m2.registers[r]
                     for r in check_registers) \
        and m1.memory == m2.memory
    return ColdSchedulingReport(
        original_toggles=bus_transition_cost(block),
        scheduled_toggles=bus_transition_cost(scheduled),
        original_energy=s1.energy,
        scheduled_energy=s2.energy,
        equivalent=equivalent,
    )


def energy_aware_selection(alternatives: Sequence[Sequence[Instruction]],
                           memory_init: Optional[Sequence[int]] = None
                           ) -> Tuple[int, List[float]]:
    """Pick the lowest-energy equivalent instruction sequence.

    Returns (winner index, per-alternative energies).  Callers are
    responsible for the alternatives' semantic equivalence (that is
    the code generator's contract); the tests verify it for the
    shipped examples.
    """
    energies: List[float] = []
    for alt in alternatives:
        machine = Machine()
        if memory_init:
            machine.load_memory(0, list(memory_init))
        stats = machine.run(list(alt) + [Instruction("HALT")])
        energies.append(stats.energy)
    winner = min(range(len(energies)), key=lambda i: energies[i])
    return winner, energies


def multiply_by_constant_alternatives(src: int, dst: int, constant: int,
                                      scratch: int = 15
                                      ) -> List[List[Instruction]]:
    """MUL-immediate vs shift-add expansions of  dst = src * constant.

    The classic strength-reduction choice, at the instruction level.
    """
    I = Instruction
    mul_version = [
        I("ADDI", rd=scratch, rs=0, imm=constant),
        I("MUL", rd=dst, rs=src, rt=scratch),
    ]
    from repro.cdfg.transforms import csd_digits

    shift_version: List[Instruction] = []
    first = True
    for shift, sign in csd_digits(constant):
        term_reg = scratch if not first else dst
        if shift == 0:
            shift_version.append(I("ADD", rd=term_reg, rs=src, rt=0))
        else:
            shift_version.append(I("SLL", rd=term_reg, rs=src, imm=shift))
        if first:
            if sign < 0:
                shift_version.append(I("SUB", rd=dst, rs=0, rt=dst))
            first = False
        else:
            if sign > 0:
                shift_version.append(I("ADD", rd=dst, rs=dst, rt=scratch))
            else:
                shift_version.append(I("SUB", rd=dst, rs=dst,
                                       rt=scratch))
    if constant == 0:
        shift_version = [I("ADD", rd=dst, rs=0, rt=0)]
    return [mul_version, shift_version]
