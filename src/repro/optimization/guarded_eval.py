"""Guarded evaluation (Section III-I, [105]).

Pure guarded evaluation: find an existing signal s and an internal
signal z such that s = 1 implies z is unobservable (s implies the
observability don't-care set of z); then transparent latches guard the
inputs of the cone F driving z, freezing F whenever s = 1 — no new
logic except the guard latches is added.

Observability don't cares are computed exactly with BDDs:

    ODC_z(X) = AND_outputs (out|_{z=0} == out|_{z=1})

The timing side condition  t_l(s) < t_e(Y)  is checked with the cell
library's delays (earliest input arrival of the guarded cone vs the
guard signal's settling time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.bdd import Bdd, BddManager
from repro.logic.bdd_bridge import net_bdds
from repro.logic.netlist import Circuit, Gate
from repro.logic.simulate import Vector, collect_activity, evaluate


@dataclass
class GuardCandidate:
    """A (guard signal, guarded signal) pair with its quality."""

    guard: str            # s: when 1, z is unobservable
    guarded: str          # z: output of the cone to freeze
    cone_gates: int       # size of the frozen cone
    guard_probability: float


def _observability_dont_care(circuit: Circuit, z: str,
                             mgr: BddManager,
                             bdds: Dict[str, Bdd]) -> Bdd:
    """ODC set of net z w.r.t. all primary outputs (as input minterms)."""
    # Substitute a fresh variable for z in each output cone, then
    # compare cofactors.  Rebuild outputs as functions of (inputs, z).
    z_var = mgr.var(f"__z_{z}")
    values: Dict[str, Bdd] = {}
    for name in circuit.inputs:
        values[name] = mgr.var(name)
    for latch in circuit.latches:
        values[latch.output] = mgr.var(latch.output)
    from repro.logic.bdd_bridge import _apply_gate

    for gate in circuit.topological_gates():
        if gate.output == z:
            values[z] = z_var
            continue
        operands = [values[n] for n in gate.inputs]
        values[gate.output] = _apply_gate(mgr, gate.gate_type, operands)

    odc = mgr.true
    for out in circuit.outputs:
        f = values[out]
        high = f.restrict({f"__z_{z}": True})
        low = f.restrict({f"__z_{z}": False})
        odc = odc & ~(high ^ low)
    return odc


def transitive_fanin_gates(circuit: Circuit, net: str) -> List[Gate]:
    """Gates in the cone driving ``net``."""
    cone: List[Gate] = []
    seen: Set[str] = set()
    stack = [net]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        driver = circuit._driver.get(current)
        if isinstance(driver, Gate):
            cone.append(driver)
            stack.extend(driver.inputs)
    return cone


def _arrival_times(circuit: Circuit) -> Dict[str, float]:
    times: Dict[str, float] = {n: 0.0 for n in circuit.inputs}
    times.update({l.output: 0.0 for l in circuit.latches})
    for gate in circuit.topological_gates():
        start = max((times[n] for n in gate.inputs), default=0.0)
        times[gate.output] = start + gate.spec.delay
    return times


def find_guard_candidates(circuit: Circuit, min_cone: int = 3,
                          check_timing: bool = True
                          ) -> List[GuardCandidate]:
    """Enumerate pure-guarded-evaluation opportunities.

    For every internal net z with a cone of at least ``min_cone``
    gates, test every other net s for the implication
    s = 1  =>  ODC_z, plus the timing condition.  Candidates are
    sorted by expected benefit (cone size x guard probability).
    """
    mgr = BddManager()
    bdds = net_bdds(circuit, mgr)
    arrivals = _arrival_times(circuit)
    results: List[GuardCandidate] = []

    internal = [g.output for g in circuit.gates
                if g.output not in circuit.outputs]
    for z in internal:
        cone = transitive_fanin_gates(circuit, z)
        if len(cone) < min_cone:
            continue
        cone_inputs = {n for g in cone for n in g.inputs}
        t_earliest = min((arrivals[n] for n in cone_inputs), default=0.0)
        odc = _observability_dont_care(circuit, z, mgr, bdds)
        if odc.is_false():
            continue
        cone_nets = {g.output for g in cone}
        not_odc = ~odc
        care_vars = not_odc.support()
        for s, s_bdd in bdds.items():
            if s == z or s in cone_nets or s_bdd.is_false() \
                    or s_bdd.is_true():
                continue
            # s must not itself depend on the cone output.
            if check_timing and arrivals.get(s, 0.0) >= t_earliest \
                    and s not in circuit.inputs:
                continue
            # s => ODC_z  iff  exists V (s & ~ODC_z) is empty; the fused
            # and_exists never builds the product and bails out on the
            # first satisfying branch it meets.
            if s_bdd.and_exists(not_odc, care_vars).is_false():
                results.append(GuardCandidate(
                    guard=s, guarded=z, cone_gates=len(cone),
                    guard_probability=s_bdd.probability()))
    results.sort(key=lambda c: -c.cone_gates * c.guard_probability)
    return results


def apply_guarded_evaluation(circuit: Circuit,
                             candidate: GuardCandidate,
                             name: Optional[str] = None) -> Circuit:
    """Insert guard latches on the candidate cone's inputs.

    One transparent latch (TLATCH cell + clockless hold element) per
    cone input: when the guard is 1 the cone inputs hold their
    previous value, freezing all switching inside the cone.  The
    circuit's functional outputs are unchanged because the cone's
    output is unobservable whenever the guard is high.
    """
    new = circuit.clone(name or f"{circuit.name}_guarded")
    cone = transitive_fanin_gates(new, candidate.guarded)
    cone_set = {g.name for g in cone}
    cone_inputs = sorted({n for g in cone for n in g.inputs}
                         - {g.output for g in cone})

    # Guard each cone input with a transparent latch: the TLATCH data
    # path passes the live input while the guard is low and recycles
    # the held value while it is high; the (clockless) state element
    # samples the latch output only while transparent.
    transparent = new.add_gate("INV", [candidate.guard],
                               output="guard_open")
    for i, net in enumerate(cone_inputs):
        q = f"guard{i}_q"
        held = new.add_gate("TLATCH", [net, q, candidate.guard],
                            output=f"guard{i}_d")
        new.add_latch(held, output=q, enable=transparent, clocked=False)
        for gate in new.gates:
            if gate.name in cone_set:
                gate.inputs = [held if x == net else x
                               for x in gate.inputs]
    new.invalidate()
    return new


@dataclass
class GuardedEvalReport:
    candidate: GuardCandidate
    original_power: float
    guarded_power: float
    equivalent: bool

    @property
    def saving(self) -> float:
        if self.original_power == 0:
            return 0.0
        return 1.0 - self.guarded_power / self.original_power


def evaluate_guarded(circuit: Circuit, vectors: Sequence[Vector],
                     min_cone: int = 3, top_k: int = 1,
                     engine: Optional[str] = None,
                     incremental: bool = True,
                     cross_check: bool = False,
                     workers: Union[int, str, None] = None
                     ) -> Optional[GuardedEvalReport]:
    """Apply the best guard candidate and measure the power effect.

    ``top_k > 1`` measures that many candidates and keeps the lowest-
    power one instead of trusting the static ODC-coverage ranking.
    With ``incremental`` (the default) each candidate's measurement
    resimulates only its own guarded cone plus fanout — the rest of
    the circuit (and the shared baseline) splices from the cone
    cache, which is what makes wide candidate sweeps affordable.
    ``workers`` fans the candidate measurements out over the shared
    search pool (:mod:`repro.optimization.search`); the winner — and
    every report — is bit-identical to the serial walk.
    ``cross_check`` reruns the winner on the full engine and asserts
    exact equality.
    """
    from repro.logic import incremental as inc
    from repro.optimization import search

    candidates = find_guard_candidates(circuit, min_cone=min_cone)
    if not candidates:
        return None

    def _activity(c):
        if incremental:
            return inc.collect_activity_incremental(c, vectors,
                                                    engine=engine)
        return collect_activity(c, vectors, engine=engine)

    chosen = candidates[:max(1, top_k)]
    variants = [apply_guarded_evaluation(circuit, cand)
                for cand in chosen]
    reports = search.evaluate_candidates(
        search.activity_job, [circuit] + variants,
        stimuli={"stimulus": vectors},
        extras={"incremental": incremental},
        workers=workers, engine=engine, label="guarded_eval")
    p0 = reports[0].average_power()
    best = None
    guarded = None
    p1 = 0.0
    for cand, variant, report in zip(chosen, variants, reports[1:]):
        power = report.average_power()
        if best is None or power < p1:
            best, guarded, p1 = cand, variant, power

    from repro.logic.fastsim import PackedVectors

    walk = vectors.to_vectors()[:50] \
        if isinstance(vectors, PackedVectors) else vectors[:50]
    equivalent = True
    state = {l.output: l.init for l in guarded.latches}
    for vec in walk:
        ref = evaluate(circuit, vec)
        got = evaluate(guarded, vec, state)
        from repro.logic.simulate import next_state

        state = next_state(guarded, got)
        if any(ref[o] != got[o] for o in circuit.outputs):
            equivalent = False
            break

    if cross_check:
        report = _activity(guarded)
        full = collect_activity(guarded, vectors, engine=engine)
        if not inc.reports_equal(report, full):
            raise AssertionError("incremental guarded-eval report "
                                 "diverged from full resimulation")
    return GuardedEvalReport(best, p0, p1, equivalent)
