"""Precomputation-based power management (Section III-I, [99], [100]).

Architecture of Fig. 6: two predictor functions g1, g0 over a subset S
of the inputs satisfy  g1 = 1 => f = 1  and  g0 = 1 => f = 0.  When
either fires, the input register bank of block A holds its value (load
enable low) and the registered predictor outputs supply f; block A
then sees no input change and switches nothing.

Predictors are derived exactly with BDD universal quantification:

    g1 = forall_{X \\ S} f        g0 = forall_{X \\ S} f'

The module both *builds the real circuit* (load-enable registers,
predictor logic synthesized to gates, output mux) and
verifies/measures it by simulation; load-enable flops stop their
local clock while disabled, which is where the power goes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bdd import Bdd, BddManager
from repro.logic.bdd_bridge import net_bdds
from repro.logic.netlist import Circuit
from repro.logic.simulate import Vector, collect_activity
from repro.logic.synthesis import synthesize_cover
from repro.twolevel.quine_mccluskey import minimize


@dataclass
class PredictorPair:
    """Chosen predictor subset and its coverage probability."""

    subset: List[str]
    g1_onset: List[int]          # over subset variables
    g0_onset: List[int]
    coverage: float              # P(g1 + g0 = 1) under uniform inputs

    @property
    def is_useful(self) -> bool:
        return self.coverage > 0.0


def derive_predictors(circuit: Circuit, output: str,
                      subset: Sequence[str]) -> PredictorPair:
    """Exact g1/g0 for a given predictor input subset via BDDs.

    The universal quantifications ride the manager's fused
    ``and_exists`` engine through the duality
    ``forall V f = ~exists V ~f``: one traversal each, no intermediate
    conjunction, early exit on TRUE branches.
    """
    mgr = BddManager()
    f = net_bdds(circuit, mgr, nets=[output])[output]
    others = [n for n in circuit.inputs if n not in subset]
    g1 = ~(~f).and_exists(mgr.true, others)
    g0 = ~f.and_exists(mgr.true, others)

    subset = list(subset)
    g1_onset: List[int] = []
    g0_onset: List[int] = []
    # support(g1/g0) is a subset of ``subset``, so a plain evaluate
    # walk suffices — no cofactor BDDs are built per minterm.
    for m in range(1 << len(subset)):
        assignment = {name: bool((m >> i) & 1)
                      for i, name in enumerate(subset)}
        if g1.evaluate(assignment):
            g1_onset.append(m)
        if g0.evaluate(assignment):
            g0_onset.append(m)
    coverage = (g1 | g0).probability()
    return PredictorPair(subset, g1_onset, g0_onset, coverage)


def best_subset(circuit: Circuit, output: str, subset_size: int,
                max_candidates: int = 256) -> PredictorPair:
    """Search input subsets of the given size for maximum coverage.

    Exhaustive when the combination count is small; otherwise greedy
    forward growth from the best exhaustive pair.
    """
    inputs = circuit.inputs
    combos = list(itertools.combinations(inputs, subset_size))
    if len(combos) <= max_candidates:
        best: Optional[PredictorPair] = None
        for subset in combos:
            pair = derive_predictors(circuit, output, subset)
            if best is None or pair.coverage > best.coverage:
                best = pair
        assert best is not None
        return best

    # Greedy growth: exhaust pairs (coverage is usually zero for
    # singletons -- no one input decides f -- so pair seeding is the
    # smallest informative start), then add the input that maximizes
    # coverage at each step.
    seed_size = min(2, subset_size)
    best = None
    for subset in itertools.combinations(inputs, seed_size):
        pair = derive_predictors(circuit, output, subset)
        if best is None or pair.coverage > best.coverage:
            best = pair
    assert best is not None
    while len(best.subset) < subset_size:
        grown = None
        remaining = [x for x in inputs if x not in best.subset]
        room = subset_size - len(best.subset)
        # Grow by one input, or by a pair: datapath structures like
        # comparators only gain coverage when both operands' bits at a
        # position join the subset together.
        extensions = [[x] for x in remaining]
        if room >= 2:
            extensions.extend(list(combo) for combo in
                              itertools.combinations(remaining, 2))
        for extension in extensions:
            pair = derive_predictors(circuit, output,
                                     list(best.subset) + extension)
            if grown is None or pair.coverage > grown.coverage:
                grown = pair
        if grown is None or grown.coverage <= best.coverage:
            # No improvement: pad with the first spare inputs so the
            # requested size is honoured.
            pad = remaining[:room]
            best = derive_predictors(circuit, output,
                                     list(best.subset) + pad)
            break
        best = grown
    return best


def _gated_register(circuit: Circuit, data: str, enable: str,
                    name_hint: str) -> str:
    """Load-enable flop: loads ``data`` when ``enable`` = 1, else
    holds with its local clock gated off."""
    return circuit.add_latch(data, output=f"{name_hint}_q",
                             enable=enable)


def build_precomputed_circuit(circuit: Circuit, output: str,
                              predictors: PredictorPair,
                              name: Optional[str] = None) -> Circuit:
    """Assemble the Fig. 6 architecture as a real netlist.

    The result is sequential: inputs are registered (gated by the
    predictor decision from the *previous* cycle's raw inputs, as in
    the paper), block A is duplicated structurally from ``circuit``,
    and the output is muxed from block A and the registered
    predictors.
    """
    if len(circuit.outputs) != 1 or circuit.outputs[0] != output:
        raise ValueError("precomputation expects the single output "
                         f"{output!r}")
    new = Circuit(name or f"{circuit.name}_precomp")
    new.add_inputs(circuit.inputs)

    subset = predictors.subset
    n_sub = len(subset)
    g1_cover = minimize(n_sub, predictors.g1_onset)
    g0_cover = minimize(n_sub, predictors.g0_onset)
    synthesize_cover(g1_cover, subset, "g1", circuit=new)
    synthesize_cover(g0_cover, subset, "g0", circuit=new)
    predict = new.add_gate("OR2", ["g1", "g0"], output="predict")
    load_enable = new.add_gate("INV", [predict], output="le")

    # Registered predictor outputs (always clocked).
    g1_q = new.add_latch("g1", output="g1_q")
    g0_q = new.add_latch("g0", output="g0_q")
    predict_q = new.add_latch(predict, output="predict_q")

    # Gated input registers for block A.
    reg_out: Dict[str, str] = {}
    for i, net in enumerate(circuit.inputs):
        reg_out[net] = _gated_register(new, net, load_enable, f"r{i}")

    # Block A duplicated on the registered inputs.
    rename = dict(reg_out)
    for gate in circuit.topological_gates():
        ins = [rename[n] for n in gate.inputs]
        rename[gate.output] = new.add_gate(gate.gate_type, ins)

    # Output: predictor value when predicted, else block A's output.
    # (g1_q high means f = 1.)
    new.add_gate("MUX2", [rename[output], g1_q, predict_q], output="f")
    new.add_output("f")
    del g0_q
    return new


@dataclass
class PrecomputationReport:
    coverage: float
    original_power: float
    precomputed_power: float

    @property
    def saving(self) -> float:
        if self.original_power == 0:
            return 0.0
        return 1.0 - self.precomputed_power / self.original_power


def registered_baseline(circuit: Circuit, output: str) -> Circuit:
    """The always-clocked registered-input baseline of Fig. 6."""
    base = Circuit(f"{circuit.name}_registered")
    base.add_inputs(circuit.inputs)
    rename: Dict[str, str] = {}
    for i, net in enumerate(circuit.inputs):
        rename[net] = base.add_latch(net, output=f"r{i}_q")
    for gate in circuit.topological_gates():
        ins = [rename[n] for n in gate.inputs]
        rename[gate.output] = base.add_gate(gate.gate_type, ins)
    base.add_gate("BUF", [rename[output]], output="f")
    base.add_output("f")
    return base


def evaluate_precomputation(circuit: Circuit, output: str,
                            subset_size: int,
                            vectors: Sequence[Vector],
                            engine: Optional[str] = None,
                            incremental: bool = True,
                            cross_check: bool = False,
                            workers: Union[int, str, None] = None
                            ) -> PrecomputationReport:
    """Measure power before/after precomputation on the same stimulus.

    The original circuit is compared with input registers added (so
    both designs pay register+clock power); one pipeline cycle of
    latency is inherent to the architecture and excluded from the
    functional comparison (handled by the caller/tests).

    With ``incremental`` (the default) both measurements go through
    the cone cache: the registered baseline is identical across a
    ``subset_size`` sweep (the predictor subset only shapes the
    precomputed variant), so every sweep step after the first splices
    it from cache, bit-identically.  ``workers`` fans the
    measurements over the shared search pool.  ``cross_check`` reruns
    the full engine and asserts exact equality.
    """
    return sweep_precomputation(circuit, output, [subset_size], vectors,
                                engine=engine, incremental=incremental,
                                cross_check=cross_check,
                                workers=workers)[0]


def sweep_precomputation(circuit: Circuit, output: str,
                         subset_sizes: Sequence[int],
                         vectors: Sequence[Vector],
                         engine: Optional[str] = None,
                         incremental: bool = True,
                         cross_check: bool = False,
                         workers: Union[int, str, None] = None
                         ) -> List[PrecomputationReport]:
    """One :class:`PrecomputationReport` per predictor subset size.

    The candidate loop of the pass: the registered baseline plus one
    precomputed variant per subset size, measured in a single fan-out
    over the shared search pool (:mod:`repro.optimization.search`).
    Reports are bit-identical to calling
    :func:`evaluate_precomputation` per size.
    """
    from repro.logic import incremental as inc
    from repro.optimization import search

    pairs = [best_subset(circuit, output, size)
             for size in subset_sizes]
    base = registered_baseline(circuit, output)
    variants = [build_precomputed_circuit(circuit, output, predictors)
                for predictors in pairs]
    reports = search.evaluate_candidates(
        search.activity_job, [base] + variants,
        stimuli={"stimulus": vectors},
        extras={"incremental": incremental},
        workers=workers, engine=engine, label="precompute")
    if cross_check:
        for c, report in zip([base] + variants, reports):
            full = collect_activity(c, vectors, engine=engine)
            if not inc.reports_equal(report, full):
                raise AssertionError(
                    "incremental precomputation report diverged from "
                    "full resimulation")
    base_power = reports[0].average_power()
    return [PrecomputationReport(predictors.coverage, base_power,
                                 report.average_power())
            for predictors, report in zip(pairs, reports[1:])]
