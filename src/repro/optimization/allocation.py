"""Resource allocation and binding for low power (Section III-E).

Implements the Raghunathan-Jha style simultaneous allocation [65] on
scheduled CDFGs:

- a *compatibility graph* over variables (for registers) or operations
  (for functional units): nodes are compatible when their lifetimes /
  control steps do not overlap,
- edge weights  W = W_c (1 - W_s)  combine the capacitance saving of
  sharing (W_c) with the normalized average bit switching W_s between
  the two candidates' data (from high-level CDFG simulation),
- iterative merging by decreasing weight binds nodes to shared
  resources.

Baselines: left-edge register allocation (capacitance-only) and
switching-blind greedy binding, so the 5-33% power-saving claim of the
paper (bench C8) can be measured.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.backend.core import default_engine, resolve_engine
from repro.cdfg.graph import Cdfg, CdfgNode
from repro.cdfg.schedule import Schedule
from repro.rtl import faststreams
from repro.util.bits import hamming


# ----------------------------------------------------------------------
# Variable lifetimes (register allocation)
# ----------------------------------------------------------------------

@dataclass
class Lifetime:
    """A value produced by node ``uid`` alive during [birth, death]."""

    uid: int
    birth: int
    death: int

    def overlaps(self, other: "Lifetime") -> bool:
        return not (self.death <= other.birth or other.death <= self.birth)


def variable_lifetimes(cdfg: Cdfg, schedule: Schedule) -> List[Lifetime]:
    """One lifetime per operation value consumed in a later step."""
    succ = cdfg.successors()
    lifetimes: List[Lifetime] = []
    for node in cdfg.operations():
        consumers = [s for s in succ[node.uid]
                     if cdfg.node(s).is_operation()]
        is_output = node.uid in cdfg.outputs.values()
        if not consumers and not is_output:
            continue
        birth = schedule.finish(node.uid)
        death = max([schedule.steps[s] for s in consumers]
                    + ([schedule.latency + 1] if is_output else []))
        if death > birth:
            lifetimes.append(Lifetime(node.uid, birth, death))
    return lifetimes


def left_edge_registers(lifetimes: Sequence[Lifetime]) -> Dict[int, int]:
    """Classic left-edge algorithm: uid -> register index."""
    assignment: Dict[int, int] = {}
    remaining = sorted(lifetimes, key=lambda l: (l.birth, l.death))
    register = 0
    while remaining:
        current_end = -1
        leftover: List[Lifetime] = []
        for life in remaining:
            if life.birth >= current_end:
                assignment[life.uid] = register
                current_end = life.death
            else:
                leftover.append(life)
        remaining = leftover
        register += 1
    return assignment


# ----------------------------------------------------------------------
# Switching statistics from high-level simulation
# ----------------------------------------------------------------------

def average_switch_fraction(values_a: Sequence[int],
                            values_b: Sequence[int], width: int,
                            engine: Optional[str] = None) -> float:
    """Average fraction of bits flipping when b's data follows a's."""
    if not values_a or not values_b:
        return 0.5
    n = min(len(values_a), len(values_b))
    engine = resolve_engine(engine, default_engine(), cycles=n)
    if engine != "reference":
        total = faststreams.cross_hamming(
            values_a, values_b, width,
            backend="numpy" if engine == "numpy" else None)
    else:
        total = sum(hamming(values_a[t], values_b[t]) for t in range(n))
    return total / (n * width)


def pairwise_switch_fractions(uids: Sequence[int],
                              traces: Dict[int, Sequence[int]],
                              width: int) -> Dict[Tuple[int, int], float]:
    """Switch fractions for every uid pair, via one packed matrix.

    Equivalent to calling :func:`average_switch_fraction` on each of
    the O(n^2) pairs, but each trace is packed once and every pair
    costs a single xor+popcount over the packed bignums.
    """
    trace_list = [traces[uid] for uid in uids]
    matrix = faststreams.pairwise_hamming_matrix(trace_list, width)
    fractions: Dict[Tuple[int, int], float] = {}
    for i, a in enumerate(uids):
        for j in range(i + 1, len(uids)):
            b = uids[j]
            n = min(len(trace_list[i]), len(trace_list[j]))
            if n == 0:
                fractions[(a, b)] = 0.5
            else:
                fractions[(a, b)] = matrix[i][j] / (n * width)
    return fractions


# ----------------------------------------------------------------------
# Weighted compatibility-graph allocation
# ----------------------------------------------------------------------

@dataclass
class AllocationResult:
    assignment: Dict[int, int]      # uid -> resource index
    n_resources: int
    switching_cost: float           # expected bits switched / iteration


def _merge_allocate(items: Sequence[int],
                    compatible: Dict[Tuple[int, int], bool],
                    weight: Dict[Tuple[int, int], float]) -> Dict[int, int]:
    """Iteratively merge the highest-weight compatible pair [65]."""
    clusters: List[Set[int]] = [{uid} for uid in items]

    def cluster_weight(a: Set[int], b: Set[int]) -> Optional[float]:
        total = 0.0
        for x in a:
            for y in b:
                key = (x, y) if x < y else (y, x)
                if not compatible.get(key, False):
                    return None
                total += weight.get(key, 0.0)
        return total

    improved = True
    while improved:
        improved = False
        best: Optional[Tuple[float, int, int]] = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                w = cluster_weight(clusters[i], clusters[j])
                if w is not None and (best is None or w > best[0]):
                    best = (w, i, j)
        if best is not None and best[0] > 0:
            _w, i, j = best
            clusters[i] |= clusters[j]
            del clusters[j]
            improved = True
    assignment: Dict[int, int] = {}
    for index, cluster in enumerate(clusters):
        for uid in cluster:
            assignment[uid] = index
    return assignment


def _binding_switching(order_by_resource: Dict[int, List[int]],
                       traces: Dict[int, List[int]],
                       width: int,
                       engine: Optional[str] = None) -> float:
    """Bits switched per iteration at shared-resource inputs."""
    total = 0.0
    cycles = len(next(iter(traces.values()))) if traces else 1
    engine = resolve_engine(engine, default_engine(), cycles=cycles)
    if engine != "reference":
        backend = "numpy" if engine == "numpy" else None
        packs: Dict[int, int] = {}

        def packed(uid: int) -> int:
            if uid not in packs:
                packs[uid] = faststreams.pack_words(traces[uid], width)
            return packs[uid]

        for uids in order_by_resource.values():
            if len(uids) < 2:
                continue
            for a, b in zip(uids, uids[1:]):
                total += faststreams.cross_hamming(
                    traces[a], traces[b], width, packed(a), packed(b),
                    backend=backend)
        return total / max(1, cycles)
    for uids in order_by_resource.values():
        if len(uids) < 2:
            continue
        for t in range(cycles):
            for a, b in zip(uids, uids[1:]):
                total += hamming(traces[a][t], traces[b][t])
    return total / max(1, cycles)


def allocate_registers(cdfg: Cdfg, schedule: Schedule,
                       input_streams: Dict[str, Sequence[int]],
                       activity_aware: bool = True) -> AllocationResult:
    """Register allocation via the weighted compatibility graph.

    W_c is constant (every merge saves one register of capacitance);
    W_s is the average bit-switch fraction between the two variables'
    value streams, so W = 1 - W_s ranks low-switching merges first.
    With ``activity_aware=False``, W_s is ignored (pure left-edge-like
    sharing), the paper's baseline.
    """
    lifetimes = variable_lifetimes(cdfg, schedule)
    traces = cdfg.simulate(input_streams)
    by_uid = {l.uid: l for l in lifetimes}
    uids = sorted(by_uid)

    def build(weighted: bool) -> AllocationResult:
        compatible: Dict[Tuple[int, int], bool] = {}
        weight: Dict[Tuple[int, int], float] = {}
        fractions = pairwise_switch_fractions(uids, traces, cdfg.width) \
            if weighted else {}
        for i, a in enumerate(uids):
            for b in uids[i + 1:]:
                key = (a, b)
                compatible[key] = not by_uid[a].overlaps(by_uid[b])
                if weighted:
                    weight[key] = 1.0 * (1.0 - fractions[key])
                else:
                    weight[key] = 1.0
        assignment = _merge_allocate(uids, compatible, weight)
        order: Dict[int, List[int]] = {}
        for uid in uids:
            order.setdefault(assignment[uid], []).append(uid)
        for group in order.values():
            group.sort(key=lambda u: by_uid[u].birth)
        cost = _binding_switching(order, traces, cdfg.width)
        return AllocationResult(assignment, len(order), cost)

    blind = build(weighted=False)
    if not activity_aware:
        return blind
    # The weighted greedy merge is a heuristic; keep whichever
    # clustering actually switches less (never worse than blind, at
    # equal register counts the tie goes to the weighted one).
    aware = build(weighted=True)
    if (aware.switching_cost, aware.n_resources) <= \
            (blind.switching_cost, blind.n_resources):
        return aware
    if blind.switching_cost < aware.switching_cost:
        return blind
    return aware


def bind_functional_units(cdfg: Cdfg, schedule: Schedule,
                          input_streams: Dict[str, Sequence[int]],
                          activity_aware: bool = True) -> Dict[
                              str, AllocationResult]:
    """Module binding per operation kind with the same machinery.

    Two operations are compatible when scheduled in disjoint busy
    intervals; W_s is the switch fraction between their (first)
    operand streams.
    """
    traces = cdfg.simulate(input_streams)
    results: Dict[str, AllocationResult] = {}
    by_kind: Dict[str, List[CdfgNode]] = {}
    for node in cdfg.operations():
        by_kind.setdefault(node.kind, []).append(node)

    for kind, nodes in by_kind.items():
        uids = sorted(n.uid for n in nodes)
        op_traces = {uid: _operand_trace(cdfg, traces, uid)
                     for uid in uids}
        compatible: Dict[Tuple[int, int], bool] = {}
        weight: Dict[Tuple[int, int], float] = {}
        fractions = pairwise_switch_fractions(uids, op_traces,
                                              cdfg.width) \
            if activity_aware else {}
        for i, a in enumerate(uids):
            for b in uids[i + 1:]:
                key = (a, b)
                a_busy = (schedule.steps[a], schedule.finish(a))
                b_busy = (schedule.steps[b], schedule.finish(b))
                compatible[key] = (a_busy[1] < b_busy[0]
                                   or b_busy[1] < a_busy[0])
                if activity_aware:
                    weight[key] = 1.0 - fractions[key]
                else:
                    weight[key] = 1.0
        assignment = _merge_allocate(uids, compatible, weight)
        order: Dict[int, List[int]] = {}
        for uid in uids:
            order.setdefault(assignment[uid], []).append(uid)
        for group in order.values():
            group.sort(key=lambda u: schedule.steps[u])
        cost = _binding_switching(order, op_traces, cdfg.width)
        results[kind] = AllocationResult(assignment, len(order), cost)
    return results


def _operand_trace(cdfg: Cdfg, traces: Dict[int, List[int]],
                   uid: int) -> List[int]:
    node = cdfg.node(uid)
    return traces[node.operands[0]]
