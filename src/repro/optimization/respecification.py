"""Controller respecification for control-flow-intensive designs
(Section III-I end, Raghunathan et al. [107], [108]).

In mux-dominated RTL, control signals often carry don't-care values on
cycles where the steering network's output is unobservable (the
selected path does not depend on them).  Respecifying those don't
cares — holding each control signal at its previous value instead of
letting the controller toggle it arbitrarily — removes switching in
the multiplexor network and the functional units behind it at zero
logic cost.

Implemented on gate netlists: control nets are the select pins of
MUX2 cells; a select's don't-care cycles are those where the mux
output is unobservable (reusing the ODC machinery of guarded
evaluation).  :func:`respecify_controls` transforms a control *trace*
(the controller's output sequence); :func:`evaluate_respecification`
measures the power effect on the full netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.bdd import Bdd, BddManager
from repro.logic.bdd_bridge import net_bdds
from repro.logic.netlist import Circuit, Gate
from repro.logic.simulate import Vector, collect_activity, evaluate


def control_inputs(circuit: Circuit) -> List[str]:
    """Primary inputs used (only) as MUX2 select pins."""
    selects: Set[str] = set()
    data_uses: Set[str] = set()
    for gate in circuit.gates:
        if gate.gate_type == "MUX2":
            selects.add(gate.inputs[2])
            data_uses.update(gate.inputs[:2])
        else:
            data_uses.update(gate.inputs)
    return [n for n in circuit.inputs
            if n in selects and n not in data_uses]


def observability_conditions(circuit: Circuit,
                             controls: Sequence[str]
                             ) -> Dict[str, Bdd]:
    """For each control input, the condition under which it matters.

    A control is observable on an input minterm iff flipping it
    changes some primary output; its don't-care set is the complement.
    """
    mgr = BddManager()
    bdds = net_bdds(circuit, mgr)
    conditions: Dict[str, Bdd] = {}
    for control in controls:
        observable = mgr.false
        for out in circuit.outputs:
            f = bdds[out]
            high = f.restrict({control: True})
            low = f.restrict({control: False})
            observable = observable | (high ^ low)
        conditions[control] = observable
    return conditions


@dataclass
class RespecificationReport:
    controls: List[str]
    changed_cycles: int
    original_power: float
    respecified_power: float
    equivalent: bool

    @property
    def saving(self) -> float:
        if self.original_power == 0:
            return 0.0
        return 1.0 - self.respecified_power / self.original_power


def respecify_controls(circuit: Circuit, vectors: Sequence[Vector],
                       controls: Optional[Sequence[str]] = None
                       ) -> Tuple[List[Vector], List[str], int]:
    """Rewrite control values on their don't-care cycles.

    Each control keeps its previous value whenever the current cycle
    does not observe it.  Returns (new vectors, controls used, number
    of changed control values).
    """
    if controls is None:
        controls = control_inputs(circuit)
    conditions = observability_conditions(circuit, controls)

    new_vectors: List[Vector] = []
    previous: Dict[str, int] = {}
    changed = 0
    for vec in vectors:
        new_vec = dict(vec)
        # Holding one control can re-expose another (its observability
        # may depend on the first), so iterate to a fixpoint: a control
        # is held only if it is unobservable under the *final* values
        # of all controls; otherwise it reverts to its specified value.
        for _pass in range(len(controls) + 1):
            stable = True
            assignment = {n: bool(v) for n, v in new_vec.items()}
            for control in controls:
                rest = {k: v for k, v in assignment.items()
                        if k != control}
                cares = conditions[control].restrict(rest)
                if cares.is_false() and control in previous:
                    desired = previous[control]
                else:
                    desired = vec[control]
                if new_vec[control] != desired:
                    new_vec[control] = desired
                    assignment[control] = bool(desired)
                    stable = False
            if stable:
                break
        # Safety net: never emit a trace that changes the outputs.
        ref = evaluate(circuit, vec)
        got = evaluate(circuit, new_vec)
        if any(ref[o] != got[o] for o in circuit.outputs):
            new_vec = dict(vec)
        changed += sum(1 for c in controls if new_vec[c] != vec[c])
        for control in controls:
            previous[control] = new_vec[control]
        new_vectors.append(new_vec)
    return new_vectors, list(controls), changed


def evaluate_respecification(circuit: Circuit,
                             vectors: Sequence[Vector],
                             engine: Optional[str] = None,
                             incremental: bool = True,
                             cross_check: bool = False,
                             workers: Union[int, str, None] = None
                             ) -> RespecificationReport:
    """Respecify the control trace and measure the power effect.

    Both measurements use the same netlist under *different* stimuli.
    With ``incremental`` (the default) they share the cone cache: cone
    keys hash each cone's support-input lanes, so cones fed only by
    data inputs (whose lanes the respecification leaves untouched)
    splice from the first run and only the control-fed cones
    resimulate.  ``workers`` fans the two trace measurements over the
    shared search pool (the cone sharing then flows through the
    sweep's disk store instead of process memory).  ``cross_check``
    reruns the full engine on the respecified trace and asserts exact
    equality.
    """
    from repro.logic import incremental as inc
    from repro.optimization import search

    new_vectors, controls, changed = respecify_controls(circuit, vectors)

    equivalent = True
    for old, new in zip(vectors, new_vectors):
        va = evaluate(circuit, old)
        vb = evaluate(circuit, new)
        if any(va[o] != vb[o] for o in circuit.outputs):
            equivalent = False
            break

    report0, report1 = search.evaluate_candidates(
        search.activity_job,
        [(circuit, "orig"), (circuit, "respec")],
        stimuli={"orig": list(vectors), "respec": new_vectors},
        extras={"incremental": incremental},
        workers=workers, engine=engine, label="respecification")
    p0 = report0.average_power()
    if cross_check:
        full = collect_activity(circuit, new_vectors, engine=engine)
        if not inc.reports_equal(report1, full):
            raise AssertionError("incremental respecification report "
                                 "diverged from full resimulation")
    p1 = report1.average_power()
    return RespecificationReport(
        controls=controls,
        changed_cycles=changed,
        original_power=p0,
        respecified_power=p1,
        equivalent=equivalent,
    )
