"""Bus encoding for low power (Section III-G).

Encoders transform the word stream driven onto a bus so fewer lines
toggle; the receiving end inverts the transform.  Implemented codes:

- :class:`BinaryCode`      -- unencoded baseline,
- :class:`BusInvertCode`   -- Stan-Burleson bus-invert [77]: invert
  the word when Hamming distance > N/2 (one redundant INV line;
  guarantees <= N/2 + 1 transitions per cycle counting INV),
- :class:`GrayCode`        -- Gray-mapped addresses [78]: one
  transition per consecutive address,
- :class:`T0Code`          -- freeze the bus on in-sequence addresses
  and let the receiver increment (redundant INC line) [80],
- :class:`T0BusInvertCode` -- T0 composed with bus-invert [81],
- :class:`WorkingZoneCode` -- per-zone reference registers with
  one-hot zone announcement and Gray-coded offsets [82],
- :class:`BeachCode`       -- trace-driven cluster re-encoding [83]:
  bus lines are clustered by pairwise correlation on a training
  trace and each cluster's value stream is re-mapped (most frequent
  transition pairs at Hamming distance 1).

Every encoder is exercised through :func:`count_transitions`, and each
decodes back to the original stream (``decode``), which the tests
verify — the codes are real, not just transition counters.
"""

from __future__ import annotations

import itertools
import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backend.core import default_engine, numpy_or_none, \
    resolve_engine
from repro.rtl import faststreams
from repro.rtl.streams import WordStream
from repro.util.bits import hamming


class BusCode:
    """Stateful encoder/decoder pair for an N-bit bus.

    ``stateless = True`` marks purely combinational codes (the bus
    value depends only on the current word): their transition counts
    can be evaluated on the packed word-stream path.
    """

    name = "base"
    extra_lines = 0
    stateless = False

    def __init__(self, width: int) -> None:
        self.width = width

    def reset(self) -> None:
        """Reset transmitter and receiver state."""

    def encode(self, word: int) -> int:
        """Bus value (data lines plus any redundant lines as MSBs)."""
        raise NotImplementedError

    def decode(self, bus_value: int) -> int:
        """Receiver's reconstruction of the original word."""
        raise NotImplementedError

    @property
    def total_lines(self) -> int:
        return self.width + self.extra_lines


class BinaryCode(BusCode):
    name = "binary"
    stateless = True

    def encode(self, word: int) -> int:
        return word

    def decode(self, bus_value: int) -> int:
        return bus_value


class BusInvertCode(BusCode):
    name = "bus-invert"
    extra_lines = 1

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self._bus = 0

    def reset(self) -> None:
        self._bus = 0

    def encode(self, word: int) -> int:
        mask = (1 << self.width) - 1
        prev_data = self._bus & mask
        if hamming(prev_data, word) > self.width // 2:
            value = (~word & mask) | (1 << self.width)
        else:
            value = word
        self._bus = value
        return value

    def decode(self, bus_value: int) -> int:
        mask = (1 << self.width) - 1
        data = bus_value & mask
        if bus_value >> self.width:
            return ~data & mask
        return data


class PartitionedBusInvertCode(BusCode):
    """Bus-invert applied per partition of the bus lines [77].

    Stan-Burleson note that for wide busses the single-INV decision
    dilutes: partitioning into independent groups, each with its own
    INV line, recovers most of the loss at k extra lines.
    """

    name = "partitioned-bi"

    def __init__(self, width: int, partitions: int = 2) -> None:
        super().__init__(width)
        self.partitions = partitions
        self.extra_lines = partitions
        bounds = [round(i * width / partitions)
                  for i in range(partitions + 1)]
        self._groups = [(bounds[i], bounds[i + 1])
                        for i in range(partitions)]
        self._subcodes = [BusInvertCode(hi - lo)
                          for lo, hi in self._groups]

    def reset(self) -> None:
        for code in self._subcodes:
            code.reset()

    def encode(self, word: int) -> int:
        value = 0
        inv_bits = 0
        for g, ((lo, hi), code) in enumerate(zip(self._groups,
                                                 self._subcodes)):
            chunk = (word >> lo) & ((1 << (hi - lo)) - 1)
            encoded = code.encode(chunk)
            data = encoded & ((1 << (hi - lo)) - 1)
            inv = encoded >> (hi - lo)
            value |= data << lo
            inv_bits |= inv << g
        return value | (inv_bits << self.width)

    def decode(self, bus_value: int) -> int:
        word = 0
        inv_bits = bus_value >> self.width
        for g, ((lo, hi), code) in enumerate(zip(self._groups,
                                                 self._subcodes)):
            chunk = (bus_value >> lo) & ((1 << (hi - lo)) - 1)
            sub_value = chunk | (((inv_bits >> g) & 1) << (hi - lo))
            word |= code.decode(sub_value) << lo
        return word


def to_gray(word: int) -> int:
    return word ^ (word >> 1)


def from_gray(gray: int) -> int:
    word = 0
    while gray:
        word ^= gray
        gray >>= 1
    return word


class GrayCode(BusCode):
    name = "gray"
    stateless = True

    def encode(self, word: int) -> int:
        return to_gray(word & ((1 << self.width) - 1))

    def decode(self, bus_value: int) -> int:
        return from_gray(bus_value)


class T0Code(BusCode):
    name = "t0"
    extra_lines = 1

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self.reset()

    def reset(self) -> None:
        self._last_sent = 0           # data lines currently on the bus
        self._tx_expected: Optional[int] = None
        self._rx_last: Optional[int] = None

    def encode(self, word: int) -> int:
        mask = (1 << self.width) - 1
        word &= mask
        if self._tx_expected is not None and word == self._tx_expected:
            value = self._last_sent | (1 << self.width)   # INC high
        else:
            value = word
            self._last_sent = word
        self._tx_expected = (word + 1) & mask
        return value

    def decode(self, bus_value: int) -> int:
        mask = (1 << self.width) - 1
        inc = bus_value >> self.width
        if inc and self._rx_last is not None:
            self._rx_last = (self._rx_last + 1) & mask
        else:
            self._rx_last = bus_value & mask
        return self._rx_last


class T0BusInvertCode(BusCode):
    """T0 for in-sequence addresses, bus-invert otherwise [81]."""

    name = "t0-bi"
    extra_lines = 2

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self.reset()

    def reset(self) -> None:
        self._bus_data = 0
        self._tx_expected: Optional[int] = None
        self._rx_last: Optional[int] = None

    def encode(self, word: int) -> int:
        mask = (1 << self.width) - 1
        word &= mask
        if self._tx_expected is not None and word == self._tx_expected:
            value = self._bus_data | (1 << self.width)    # INC line
        else:
            if hamming(self._bus_data, word) > self.width // 2:
                data = ~word & mask
                value = data | (1 << (self.width + 1))    # INV line
            else:
                data = word
                value = data
            self._bus_data = value & mask
        self._tx_expected = (word + 1) & mask
        return value

    def decode(self, bus_value: int) -> int:
        mask = (1 << self.width) - 1
        inc = (bus_value >> self.width) & 1
        inv = (bus_value >> (self.width + 1)) & 1
        if inc and self._rx_last is not None:
            self._rx_last = (self._rx_last + 1) & mask
        else:
            data = bus_value & mask
            self._rx_last = (~data & mask) if inv else data
        return self._rx_last


class WorkingZoneCode(BusCode):
    """Working-zone encoding [82].

    The receiver keeps ``n_zones`` reference registers.  A hit in zone
    z transmits the Gray-coded offset on the data lines with a one-hot
    zone announcement on ``n_zones`` extra lines (offset relative to
    the zone's reference, which both sides then update).  A miss
    transmits the full address with all zone lines low, replacing the
    least-recently-used zone.
    """

    name = "working-zone"

    def __init__(self, width: int, n_zones: int = 2,
                 offset_bits: int = 4) -> None:
        super().__init__(width)
        self.n_zones = n_zones
        self.offset_bits = offset_bits
        self.extra_lines = n_zones
        self.reset()

    def reset(self) -> None:
        self._tx_refs: List[Optional[int]] = [None] * self.n_zones
        self._rx_refs: List[Optional[int]] = [None] * self.n_zones
        self._tx_lru: List[int] = list(range(self.n_zones))
        self._rx_lru: List[int] = list(range(self.n_zones))

    def _find_zone(self, refs: Sequence[Optional[int]],
                   word: int) -> Optional[int]:
        limit = 1 << self.offset_bits
        for z, ref in enumerate(refs):
            if ref is not None and 0 <= word - ref < limit:
                return z
        return None

    @staticmethod
    def _touch(lru: List[int], zone: int) -> None:
        lru.remove(zone)
        lru.append(zone)

    def encode(self, word: int) -> int:
        mask = (1 << self.width) - 1
        word &= mask
        zone = self._find_zone(self._tx_refs, word)
        if zone is not None:
            offset = word - self._tx_refs[zone]          # type: ignore
            value = to_gray(offset) | (1 << (self.width + zone))
            self._tx_refs[zone] = word                    # ref follows
            self._touch(self._tx_lru, zone)
            return value
        victim = self._tx_lru[0]
        self._tx_refs[victim] = word
        self._touch(self._tx_lru, victim)
        return word

    def decode(self, bus_value: int) -> int:
        mask = (1 << self.width) - 1
        zone_bits = bus_value >> self.width
        if zone_bits:
            zone = zone_bits.bit_length() - 1
            offset = from_gray(bus_value & mask)
            word = ((self._rx_refs[zone] or 0) + offset) & mask
            self._rx_refs[zone] = word
            self._touch(self._rx_lru, zone)
            return word
        word = bus_value & mask
        # Mirror the transmitter's LRU replacement.
        victim = self._rx_lru[0]
        self._rx_refs[victim] = word
        self._touch(self._rx_lru, victim)
        return word


class BeachCode(BusCode):
    """Trace-driven clustered re-encoding [83].

    Training: bus lines are grouped into clusters of up to
    ``cluster_bits`` lines by pairwise correlation of their bit
    streams; within each cluster, observed values are re-encoded so
    that the most frequent consecutive value pairs sit at Hamming
    distance 1 (a greedy embedding of the cluster's transition graph
    into the code hypercube).  The resulting per-cluster permutations
    are fixed combinational encode/decode functions, as in the paper.
    """

    name = "beach"
    stateless = True

    def __init__(self, width: int, cluster_bits: int = 4) -> None:
        super().__init__(width)
        self.cluster_bits = cluster_bits
        self.clusters: List[List[int]] = [
            list(range(i, min(i + cluster_bits, width)))
            for i in range(0, width, cluster_bits)
        ]
        self.maps: List[Dict[int, int]] = [
            {v: v for v in range(1 << len(c))} for c in self.clusters]
        self.inverse: List[Dict[int, int]] = [dict(m) for m in self.maps]

    # -- training ------------------------------------------------------
    def train(self, trace: Sequence[int]) -> None:
        self.clusters = self._cluster_lines(trace)
        self.maps = []
        self.inverse = []
        for cluster in self.clusters:
            values = [self._extract(word, cluster) for word in trace]
            mapping = self._embed(values, len(cluster))
            # Validate on the training trace: an uncorrelated cluster
            # gains nothing from re-mapping, so keep it unencoded
            # (fewer XOR stages at the bus terminals, too).
            plain = faststreams.transition_count(values, len(cluster))
            mapped = faststreams.transition_count(
                [mapping[v] for v in values], len(cluster))
            if mapped >= 0.9 * plain:
                mapping = {v: v for v in range(1 << len(cluster))}
            self.maps.append(mapping)
            self.inverse.append({v: k for k, v in mapping.items()})

    def _cluster_lines(self, trace: Sequence[int]) -> List[List[int]]:
        np = numpy_or_none()

        planes = faststreams.pack_planes(trace, self.width)
        counts = faststreams.one_counts(planes)
        n = len(trace)
        # Packed lane–lane correlation (one popcount per lane pair)
        # replaces the n x width float matrix of the reference path.
        # Constant lines have no variance and correlate exactly 0 on
        # every backend.
        raw = faststreams.correlation_matrix(planes)
        corr = np.abs(raw) if np is not None \
            else [[abs(v) for v in row] for row in raw]
        # With constant lines in the trace, the surviving entries of
        # their rows sit at the sampling-noise floor (~1/sqrt(n)), and
        # letting that noise steer the greedy growth splits genuinely
        # co-varying groups.  Zero out sub-significance correlations
        # and break ties toward adjacent bus lines — the locality bias
        # of the Beach clustering itself — so the result is
        # deterministic and identical with or without numpy.
        degenerate = n > 0 and any(c in (0, n) for c in counts)
        sig = 2.0 / math.sqrt(n) if n else 0.0
        unassigned = set(range(self.width))
        clusters: List[List[int]] = []
        while unassigned:
            seed_line = max(unassigned)
            cluster = [seed_line]
            unassigned.discard(seed_line)
            while len(cluster) < self.cluster_bits and unassigned:
                if degenerate:
                    def _key(j):
                        peak = max(corr[j][k] for k in cluster)
                        if peak < sig:
                            peak = 0.0
                        return (peak,
                                -min(abs(j - k) for k in cluster), j)
                else:
                    def _key(j):
                        return max(corr[j][k] for k in cluster)
                best = max(unassigned, key=_key)
                cluster.append(best)
                unassigned.discard(best)
            clusters.append(sorted(cluster))
        return clusters

    @staticmethod
    def _extract(word: int, cluster: Sequence[int]) -> int:
        value = 0
        for pos, line in enumerate(cluster):
            value |= ((word >> line) & 1) << pos
        return value

    @staticmethod
    def _insert(value: int, cluster: Sequence[int]) -> int:
        word = 0
        for pos, line in enumerate(cluster):
            word |= ((value >> pos) & 1) << line
        return word

    def _embed(self, values: Sequence[int], n_bits: int) -> Dict[int, int]:
        """Greedy low-switching re-encoding of a cluster value stream."""
        pairs = Counter(zip(values, values[1:]))
        frequency = Counter(values)
        mapping: Dict[int, int] = {}
        free = set(range(1 << n_bits))
        # Place values in decreasing frequency; each next to the code
        # minimizing weighted distance to already-placed partners.
        for value, _count in frequency.most_common():
            if not mapping:
                code = 0
            else:
                def cost(candidate: int) -> float:
                    total = 0.0
                    for other, other_code in mapping.items():
                        w = pairs.get((value, other), 0) \
                            + pairs.get((other, value), 0)
                        if w:
                            total += w * hamming(candidate, other_code)
                    return total
                code = min(free, key=cost)
            mapping[value] = code
            free.discard(code)
        # Unseen values map to remaining codes (identity-ish order).
        for value in range(1 << n_bits):
            if value not in mapping:
                mapping[value] = min(free)
                free.discard(mapping[value])
        return mapping

    # -- coding --------------------------------------------------------
    def encode(self, word: int) -> int:
        out = 0
        for cluster, mapping in zip(self.clusters, self.maps):
            out |= self._insert(mapping[self._extract(word, cluster)],
                                cluster)
        return out

    def decode(self, bus_value: int) -> int:
        out = 0
        for cluster, inverse in zip(self.clusters, self.inverse):
            out |= self._insert(inverse[self._extract(bus_value, cluster)],
                                cluster)
        return out


# ----------------------------------------------------------------------
# Evaluation harness
# ----------------------------------------------------------------------

@dataclass
class BusReport:
    code: str
    transitions: int
    cycles: int
    lines: int

    @property
    def per_cycle(self) -> float:
        return self.transitions / max(1, self.cycles - 1)


def count_transitions(code: BusCode, stream: WordStream,
                      check_decode: bool = True,
                      engine: Optional[str] = None) -> BusReport:
    """Drive the stream through the code; count bus-line transitions.

    Stateless (combinational) codes take the packed path on the
    compiled engines ("fast" on bignum words, "numpy" on lane
    arrays): the encoded word list is counted with one shifted-xor
    popcount instead of a per-cycle Hamming loop.  Stateful codes
    always run the scalar reference loop (their encode order *is* the
    state).  All engines return identical counts.
    """
    code.reset()
    mask = (1 << code.width) - 1
    engine = resolve_engine(engine, default_engine(),
                            cycles=len(stream.words))
    if engine != "reference" and code.stateless:
        encoded = [code.encode(word) for word in stream.words]
        if check_decode:
            for word, bus_value in zip(stream.words, encoded):
                decoded = code.decode(bus_value)
                if decoded != word & mask:
                    raise AssertionError(
                        f"{code.name}: decode mismatch "
                        f"{decoded} != {word}")
        transitions = faststreams.transition_count(
            encoded, code.total_lines,
            backend="numpy" if engine == "numpy" else None)
        return BusReport(code.name, transitions, len(stream.words),
                         code.total_lines)
    prev: Optional[int] = None
    transitions = 0
    for word in stream.words:
        bus_value = code.encode(word)
        if check_decode:
            decoded = code.decode(bus_value)
            if decoded != word & mask:
                raise AssertionError(
                    f"{code.name}: decode mismatch {decoded} != {word}")
        if prev is not None:
            transitions += hamming(prev, bus_value)
        prev = bus_value
    return BusReport(code.name, transitions, len(stream.words),
                     code.total_lines)


def _count_job(code: BusCode, ctx) -> BusReport:
    """Search-pool job: transition count for one candidate code."""
    return count_transitions(code, ctx.stimulus("stream"),
                             check_decode=ctx.extras["check_decode"],
                             engine=ctx.engine)


def default_survey_codes(width: int,
                         stream: Optional[WordStream] = None,
                         train_prefix: int = 800) -> List[BusCode]:
    """The standard candidate set for :func:`survey_codes`.

    One instance of every implemented code; the Beach code is trained
    on the first ``train_prefix`` words of ``stream`` when given (its
    clustering needs representative traffic before encoding).
    """
    beach = BeachCode(width)
    if stream is not None and stream.words:
        beach.train(stream.words[:train_prefix])
    return [BinaryCode(width), BusInvertCode(width), GrayCode(width),
            T0Code(width), T0BusInvertCode(width),
            WorkingZoneCode(width, n_zones=4, offset_bits=4), beach]


def survey_codes(stream: WordStream,
                 codes: Optional[Sequence[BusCode]] = None,
                 check_decode: bool = True,
                 engine: Optional[str] = None,
                 workers: Union[int, str, None] = None
                 ) -> List[BusReport]:
    """Count transitions for every candidate code over one stream.

    The scheme-survey candidate loop: each code is an independent
    candidate, fanned over the shared search pool
    (:mod:`repro.optimization.search`) with the stream shipped once
    per worker.  Reports come back in code order, bit-identical to a
    serial :func:`count_transitions` walk.  Stateful codes (e.g. a
    trained :class:`BeachCode`) are pickled with their state and reset
    before encoding, exactly as the serial path does.
    """
    from repro.optimization import search

    if codes is None:
        codes = default_survey_codes(stream.width, stream)
    return search.evaluate_candidates(
        _count_job, list(codes),
        stimuli={"stream": stream},
        extras={"check_decode": check_decode},
        workers=workers, engine=engine, label="bus_encoding")


# ----------------------------------------------------------------------
# Address stream generators
# ----------------------------------------------------------------------

def sequential_addresses(width: int, length: int,
                         start: int = 0) -> WordStream:
    return WordStream([start + t for t in range(length)], width,
                      "sequential")


def interleaved_array_addresses(width: int, length: int,
                                n_arrays: int = 3, seed: int = 0,
                                base_stride: int = 256) -> WordStream:
    """Interleaved sequential accesses to several arrays (working
    zones): the pattern Gray/T0 lose on and working-zone wins on."""
    rng = random.Random(seed)
    offsets = [0] * n_arrays
    bases = [k * base_stride for k in range(n_arrays)]
    words = []
    for _t in range(length):
        k = rng.randrange(n_arrays)
        words.append(bases[k] + offsets[k])
        offsets[k] = (offsets[k] + 1) % (base_stride // 2)
    return WordStream(words, width, f"interleaved({n_arrays})")


def random_addresses(width: int, length: int, seed: int = 0) -> WordStream:
    rng = random.Random(seed)
    return WordStream([rng.randrange(1 << width) for _ in range(length)],
                      width, "random")


def correlated_block_addresses(width: int, length: int, seed: int = 0,
                               blocks: int = 4) -> WordStream:
    """Addresses whose high lines exhibit block correlation (the Beach
    code's target): a few hot regions with locally varying low bits."""
    rng = random.Random(seed)
    region_bits = max(2, width - 6)
    regions = [rng.randrange(1 << region_bits) << 6
               for _ in range(blocks)]
    words = []
    region = regions[0]
    for _t in range(length):
        if rng.random() < 0.05:
            region = rng.choice(regions)
        words.append(region | rng.randrange(1 << 4))
    return WordStream(words, width, "block-correlated")
