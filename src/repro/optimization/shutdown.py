"""System-level power management (Section III-B).

Event-driven devices alternate Active and Idle periods; a shutdown
policy decides when to enter the sleep state.  Implemented policies:

- :class:`AlwaysOnPolicy`        -- no management (baseline),
- :class:`OraclePolicy`          -- clairvoyant bound: sleeps exactly
  for every idle period worth sleeping (the 1 + T_I/T_A limit),
- :class:`StaticTimeoutPolicy`   -- the conventional scheme (Fig. 3):
  sleep after T idle time units,
- :class:`SrivastavaRegressionPolicy` -- predict T_I with a quadratic
  regression on the previous (T_A, T_I) pair [58],
- :class:`SrivastavaHeuristicPolicy`  -- sleep immediately when the
  preceding active period was short [58],
- :class:`HwangWuPolicy`         -- exponential-average prediction
  with misprediction correction and pre-wakeup [59].

The simulator charges active power, idle-on power, sleep power, and a
restart energy/time overhead, and reports both the power improvement
factor and the wakeup latency penalty — the quantities behind the
paper's "38x improvement, ~3% delay" claim (bench C7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Workload:
    """Alternating (active, idle) period lengths in time units."""

    periods: List[Tuple[float, float]]

    @property
    def total_active(self) -> float:
        return sum(a for a, _i in self.periods)

    @property
    def total_idle(self) -> float:
        return sum(i for _a, i in self.periods)

    def shutdown_upper_bound(self) -> float:
        """Max power improvement 1 + T_I/T_A from the paper."""
        if self.total_active == 0:
            return float("inf")
        return 1.0 + self.total_idle / self.total_active


def generate_workload(n_periods: int = 200, seed: int = 0,
                      mean_active: float = 10.0,
                      mean_idle: float = 100.0,
                      idle_tail: float = 2.0) -> Workload:
    """Event-driven workload with heavy-tailed idle periods.

    Idle lengths are Pareto-like (tail index ``idle_tail``): mostly
    short idles with occasional very long quiescence, which is what
    makes prediction worthwhile (X-server-style behaviour).
    """
    rng = random.Random(seed)
    periods: List[Tuple[float, float]] = []
    for _ in range(n_periods):
        active = rng.expovariate(1.0 / mean_active)
        u = rng.random()
        idle = mean_idle * (idle_tail - 1.0) / idle_tail \
            * (1.0 / (1.0 - u)) ** (1.0 / idle_tail)
        # Correlate: short activity tends to precede long idleness
        # (the observation behind the Srivastava heuristic).
        if active < 0.5 * mean_active:
            idle *= 1.8
        else:
            idle *= 0.6
        periods.append((active, idle))
    return Workload(periods)


class Policy:
    """Decides, for each idle period, when (if ever) to sleep."""

    name = "base"

    def sleep_after(self, history: Sequence[Tuple[float, float]],
                    current_active: float) -> Optional[float]:
        """Idle time after which to enter sleep; None = never.

        ``history`` holds completed (active, idle) pairs; the length of
        the current idle period is unknown to the policy.
        """
        raise NotImplementedError

    def wakeup_early(self) -> float:
        """Pre-wakeup lead time before the (predicted) idle end."""
        return 0.0


class AlwaysOnPolicy(Policy):
    name = "always-on"

    def sleep_after(self, history, current_active):
        return None


class OraclePolicy(Policy):
    """Clairvoyant: sleeps at idle start whenever it pays off.

    Used as the achievable bound; the simulator special-cases it by
    passing the actual idle length through ``oracle_idle``.
    """

    name = "oracle"

    def __init__(self, breakeven: float) -> None:
        self.breakeven = breakeven
        self.oracle_idle: float = 0.0

    def sleep_after(self, history, current_active):
        return 0.0 if self.oracle_idle > self.breakeven else None


class StaticTimeoutPolicy(Policy):
    """Fig. 3: power down T time units into every idle period."""

    def __init__(self, timeout: float) -> None:
        self.timeout = timeout
        self.name = f"static(T={timeout:g})"

    def sleep_after(self, history, current_active):
        return self.timeout


class SrivastavaRegressionPolicy(Policy):
    """Predict T_I from a quadratic function of the previous period.

    The regression  T_I ~ a + b T_A + c T_A^2 (+ d T_I_prev)  is
    refitted online over the observed history; sleep immediately when
    the prediction exceeds the breakeven time.
    """

    name = "srivastava-regression"

    def __init__(self, breakeven: float, warmup: int = 10) -> None:
        self.breakeven = breakeven
        self.warmup = warmup

    def _predict(self, history: Sequence[Tuple[float, float]],
                 current_active: float) -> float:
        import numpy as np

        if len(history) < self.warmup:
            return 0.0
        rows = []
        targets = []
        for k in range(1, len(history)):
            prev_a, prev_i = history[k - 1]
            a, i = history[k]
            rows.append([1.0, a, a * a, prev_i])
            targets.append(i)
        coeffs, *_ = np.linalg.lstsq(np.array(rows), np.array(targets),
                                     rcond=None)
        prev_i = history[-1][1]
        x = np.array([1.0, current_active,
                      current_active * current_active, prev_i])
        return float(x @ coeffs)

    def sleep_after(self, history, current_active):
        predicted = self._predict(history, current_active)
        return 0.0 if predicted > self.breakeven else None


class SrivastavaHeuristicPolicy(Policy):
    """Sleep at once when the preceding active burst was short [58]."""

    name = "srivastava-heuristic"

    def __init__(self, active_fraction: float = 0.6) -> None:
        self.active_fraction = active_fraction

    def sleep_after(self, history, current_active):
        if len(history) < 3:
            return None
        mean_active = sum(a for a, _i in history) / len(history)
        if current_active < self.active_fraction * mean_active:
            return 0.0
        return None


class HwangWuPolicy(Policy):
    """Exponentially weighted idle prediction with correction and
    pre-wakeup [59]:  I_pred(k+1) = alpha I_actual(k) + (1-alpha)
    I_pred(k), saturating corrections on underprediction.
    """

    name = "hwang-wu"

    def __init__(self, breakeven: float, alpha: float = 0.5,
                 prewakeup: bool = True) -> None:
        self.breakeven = breakeven
        self.alpha = alpha
        self.prewakeup = prewakeup
        self._prediction = 0.0
        self._initialized = False

    def sleep_after(self, history, current_active):
        if history:
            last_idle = history[-1][1]
            if not self._initialized:
                self._prediction = last_idle
                self._initialized = True
            else:
                self._prediction = (self.alpha * last_idle
                                    + (1 - self.alpha) * self._prediction)
        return 0.0 if self._prediction > self.breakeven else None

    def wakeup_early(self) -> float:
        # Pre-wakeup: start the restart sequence one restart-time
        # before the predicted idle end so the latency hit is hidden.
        return self._restart_hint if self.prewakeup else 0.0

    _restart_hint = 0.0

    def set_restart_time(self, restart_time: float) -> None:
        self._restart_hint = restart_time


@dataclass
class ShutdownReport:
    """Energy/latency outcome of one policy on one workload."""

    policy: str
    energy: float
    baseline_energy: float
    latency_penalty: float       # extra wait time / total active time
    sleeps: int
    mispredictions: int          # sleeps shorter than breakeven

    @property
    def improvement(self) -> float:
        if self.energy <= 0:
            return float("inf")
        return self.baseline_energy / self.energy


def simulate_policy(workload: Workload, policy: Policy,
                    p_active: float = 1.0, p_idle: float = 0.8,
                    p_sleep: float = 0.02,
                    restart_time: float = 2.0,
                    restart_energy: float = 4.0) -> ShutdownReport:
    """Run a policy over a workload and account energy and latency.

    An idle period of length I with sleep entered at time tau costs
    ``tau p_idle + (I - tau) p_sleep + restart_energy`` (if tau < I)
    and delays the next active burst by up to ``restart_time`` (minus
    any pre-wakeup overlap).  The breakeven time where sleeping pays is
    roughly ``restart_energy / (p_idle - p_sleep)``.
    """
    history: List[Tuple[float, float]] = []
    energy = 0.0
    baseline = 0.0
    delay = 0.0
    sleeps = 0
    mispredictions = 0
    breakeven = restart_energy / max(1e-9, p_idle - p_sleep)

    for active, idle in workload.periods:
        energy += active * p_active
        baseline += active * p_active + idle * p_idle
        if isinstance(policy, OraclePolicy):
            policy.oracle_idle = idle
        tau = policy.sleep_after(history, active)
        if tau is None or tau >= idle:
            energy += idle * p_idle
        else:
            sleeps += 1
            asleep = idle - tau
            energy += tau * p_idle + asleep * p_sleep + restart_energy
            if asleep < breakeven:
                mispredictions += 1
            if isinstance(policy, HwangWuPolicy):
                policy.set_restart_time(restart_time)
            lead = min(policy.wakeup_early(), asleep)
            # Early wakeup burns idle-on power for the lead interval
            # but hides that much of the restart latency.
            energy += lead * (p_idle - p_sleep)
            delay += max(0.0, restart_time - lead)
        history.append((active, idle))

    latency_penalty = delay / max(1e-9, workload.total_active)
    return ShutdownReport(
        policy=policy.name,
        energy=energy,
        baseline_energy=baseline,
        latency_penalty=latency_penalty,
        sleeps=sleeps,
        mispredictions=mispredictions,
    )


def breakeven_time(p_idle: float = 0.8, p_sleep: float = 0.02,
                   restart_energy: float = 4.0) -> float:
    return restart_energy / max(1e-9, p_idle - p_sleep)
