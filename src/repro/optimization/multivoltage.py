"""Multiple supply-voltage scheduling (Section III-F, [73]).

Chang-Pedram dynamic programming on tree-structured CDFGs: every node
accumulates a power-delay curve — the Pareto set of (latest finish
time, total energy) pairs achievable in its subtree over all voltage
assignments, including level-shifter costs on voltage crossings.  A
preorder pass then picks the actual assignment meeting a latency
constraint at minimum energy.

As in the paper, the algorithm is defined "for the simple case of
CDFGs with tree structure": every *operation* node must feed exactly
one consumer (inputs and constants may fan out freely, since they
carry no energy or delay of their own).  Non-tree graphs are rejected
with a clear error; callers can duplicate shared subtrees first if a
tree view of the hardware is acceptable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.library import EnergyDelayPoint, ModuleLibrary


@dataclass(frozen=True)
class CurvePoint:
    """One Pareto alternative for a subtree."""

    delay: float
    energy: float
    voltage: float            # root operation's supply


def _prune(points: Sequence[CurvePoint]) -> List[CurvePoint]:
    """Keep the Pareto frontier (min energy per delay)."""
    best: List[CurvePoint] = []
    for p in sorted(points, key=lambda q: (q.delay, q.energy)):
        if not best or p.energy < best[-1].energy - 1e-12:
            best.append(p)
    return best


@dataclass
class VoltageAssignment:
    voltages: Dict[int, float]
    energy: float
    latency: float
    shifters: int


class MultiVoltageScheduler:
    """DP voltage scheduler over a CDFG and a characterized library."""

    def __init__(self, library: Optional[ModuleLibrary] = None) -> None:
        self.library = library or ModuleLibrary(width=4)

    # -- curve computation ------------------------------------------
    def power_delay_curve(self, cdfg: Cdfg) -> List[CurvePoint]:
        """Curve at the (single) output root of the CDFG."""
        root = self._root(cdfg)
        curves = self._curves(cdfg)
        return curves[root]

    def _root(self, cdfg: Cdfg) -> int:
        if len(cdfg.outputs) != 1:
            raise ValueError("DP scheduler expects a single-output CDFG")
        return next(iter(cdfg.outputs.values()))

    def _check_tree(self, cdfg: Cdfg) -> None:
        succ = cdfg.successors()
        for node in cdfg.operations():
            consumers = len(succ[node.uid])
            if consumers > 1:
                raise ValueError(
                    f"node {node.uid} ({node.kind}) fans out to "
                    f"{consumers} consumers; the DP voltage scheduler "
                    "requires a tree CDFG (duplicate shared subtrees "
                    "first)")

    def _curves(self, cdfg: Cdfg) -> Dict[int, List[CurvePoint]]:
        self._check_tree(cdfg)
        curves: Dict[int, List[CurvePoint]] = {}
        memo_choice: Dict[int, Dict[Tuple[float, float],
                                    List[Tuple[int, CurvePoint]]]] = {}
        self._choices = memo_choice
        for node in cdfg.nodes:          # topological by uid
            if not node.is_operation():
                curves[node.uid] = [CurvePoint(0.0, 0.0,
                                               self.library.voltages[0])]
                continue
            options: List[CurvePoint] = []
            choices: Dict[Tuple[float, float],
                          List[Tuple[int, CurvePoint]]] = {}
            for point in self.library.curve(node.kind):
                # Combine children curves for this root voltage.
                combos: List[Tuple[float, float,
                                   List[Tuple[int, CurvePoint]]]] = \
                    [(0.0, 0.0, [])]
                for op in node.operands:
                    child_curve = curves[op]
                    new_combos = []
                    for delay, energy, picks in combos:
                        for cp in child_curve:
                            s_e, s_d = self.library.shifter_cost(
                                cp.voltage, point.voltage)
                            new_combos.append((
                                max(delay, cp.delay + s_d),
                                energy + cp.energy + s_e,
                                picks + [(op, cp)]))
                    combos = self._prune_combos(new_combos)
                for delay, energy, picks in combos:
                    cp = CurvePoint(delay + point.delay,
                                    energy + point.energy, point.voltage)
                    options.append(cp)
                    choices[(cp.delay, cp.energy)] = picks
            curves[node.uid] = _prune(options)
            memo_choice[node.uid] = choices
        return curves

    @staticmethod
    def _prune_combos(combos):
        best = {}
        for delay, energy, picks in combos:
            key = round(delay, 9)
            if key not in best or energy < best[key][1]:
                best[key] = (delay, energy, picks)
        # Pareto over delay.
        result = []
        for delay, energy, picks in sorted(best.values()):
            if not result or energy < result[-1][1] - 1e-12:
                result.append((delay, energy, picks))
        return result

    # -- assignment extraction ---------------------------------------
    def schedule(self, cdfg: Cdfg, latency: Optional[float] = None
                 ) -> VoltageAssignment:
        """Pick voltages meeting the latency bound at minimum energy.

        ``latency=None`` returns the minimum-energy point regardless
        of delay; an infeasible bound raises ValueError.
        """
        root = self._root(cdfg)
        curves = self._curves(cdfg)
        feasible = [p for p in curves[root]
                    if latency is None or p.delay <= latency + 1e-9]
        if not feasible:
            raise ValueError(
                f"latency {latency} infeasible; fastest is "
                f"{min(p.delay for p in curves[root]):.3f}")
        chosen = min(feasible, key=lambda p: p.energy)

        voltages: Dict[int, float] = {}
        shifters = 0

        def assign(uid: int, point: CurvePoint) -> None:
            nonlocal shifters
            node = cdfg.node(uid)
            if not node.is_operation():
                return
            voltages[uid] = point.voltage
            picks = self._choices[uid].get((point.delay, point.energy))
            if picks is None:      # pragma: no cover - defensive
                return
            for child_uid, child_point in picks:
                if cdfg.node(child_uid).is_operation() and \
                        not math.isclose(child_point.voltage,
                                         point.voltage):
                    shifters += 1
                assign(child_uid, child_point)

        assign(root, chosen)
        return VoltageAssignment(voltages, chosen.energy, chosen.delay,
                                 shifters)

    # -- baseline ------------------------------------------------------
    def single_voltage_energy(self, cdfg: Cdfg,
                              voltage: Optional[float] = None
                              ) -> Tuple[float, float]:
        """(energy, latency) with every operation at one voltage."""
        v = voltage if voltage is not None else self.library.voltages[0]
        energy = 0.0
        finish: Dict[int, float] = {}
        latency = 0.0
        for node in cdfg.nodes:
            if not node.is_operation():
                finish[node.uid] = 0.0
                continue
            energy += self.library.energy(node.kind, v)
            start = max((finish[o] for o in node.operands), default=0.0)
            finish[node.uid] = start + self.library.delay(node.kind, v)
            latency = max(latency, finish[node.uid])
        return energy, latency


def energy_latency_tradeoff(cdfg: Cdfg,
                            library: Optional[ModuleLibrary] = None,
                            n_points: int = 8
                            ) -> List[Tuple[float, float]]:
    """(latency bound, energy) sweep for bench C9."""
    scheduler = MultiVoltageScheduler(library)
    curve = scheduler.power_delay_curve(cdfg)
    fastest = min(p.delay for p in curve)
    slowest = max(p.delay for p in curve)
    results: List[Tuple[float, float]] = []
    for k in range(n_points):
        bound = fastest + (slowest - fastest) * k / max(1, n_points - 1)
        assignment = scheduler.schedule(cdfg, latency=bound)
        results.append((bound, assignment.energy))
    return results
