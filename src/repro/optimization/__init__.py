"""Power-constrained synthesis and optimization (Section III).

- :mod:`repro.optimization.shutdown`      -- system-level power
  management policies (III-B),
- :mod:`repro.optimization.bus_encoding`  -- Bus-Invert, Gray, T0,
  working-zone, and Beach codes (III-G),
- :mod:`repro.optimization.precompute`    -- precomputation logic
  (III-I, [99], [100]),
- :mod:`repro.optimization.clock_gating`  -- gated-clock synthesis
  (III-I, [101]-[103]),
- :mod:`repro.optimization.guarded_eval`  -- guarded evaluation via
  observability don't cares (III-I, [105]),
- :mod:`repro.optimization.retiming`      -- Leiserson-Saxe retiming
  and the low-power retiming heuristic (III-J),
- :mod:`repro.optimization.lp_scheduling` -- low-power operation
  scheduling (III-D),
- :mod:`repro.optimization.allocation`    -- activity-aware resource
  allocation and binding (III-E),
- :mod:`repro.optimization.multivoltage`  -- multiple supply-voltage
  scheduling (III-F),
- :mod:`repro.optimization.software_opt`  -- cold scheduling and
  memory-access optimization (III-A).
"""
