"""Retiming for performance and power (Section III-J).

Two layers:

- :func:`min_period_retiming` -- classic Leiserson-Saxe [110] on an
  abstract retiming graph (networkx): binary-search the clock period,
  testing feasibility with the Bellman-Ford constraint system over
  W/D-style inequalities,
- :func:`low_power_pipeline` / :func:`evaluate_power_retiming` -- the
  Monteiro heuristic [111] on real netlists: registers placed at the
  outputs of glitch-heavy gates kill glitch propagation (a register
  output toggles at most once per cycle), so candidate gates are
  ranked by (glitching at the gate) x (downstream capacitance), and a
  pipeline cut through the top candidates is compared against a plain
  depth-balanced cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx

from repro.logic.eventsim import EventSimulator
from repro.logic.fasttimer import timed_activity_cached
from repro.logic.fastsim import PackedVectors
from repro.logic.netlist import Circuit, Gate
from repro.logic.simulate import Vector, collect_activity


# ----------------------------------------------------------------------
# Leiserson-Saxe min-period retiming on an abstract graph
# ----------------------------------------------------------------------

def retimed_period(graph: nx.DiGraph, retiming: Dict[str, int]) -> float:
    """Clock period of a retimed graph (longest register-free path).

    Nodes carry ``delay``; edges carry ``weight`` (register count).
    The retimed weight of edge (u, v) is w + r(v) - r(u).
    """
    zero_edges = [(u, v) for u, v, data in graph.edges(data=True)
                  if data["weight"] + retiming.get(v, 0)
                  - retiming.get(u, 0) == 0]
    sub = graph.edge_subgraph(zero_edges) if zero_edges \
        else nx.DiGraph()
    longest: Dict[str, float] = {}
    period = max((graph.nodes[n]["delay"] for n in graph.nodes),
                 default=0.0)
    if sub.number_of_nodes() and not nx.is_directed_acyclic_graph(sub):
        return float("inf")   # a register-free cycle: unclockable
    order = list(nx.topological_sort(sub)) if sub.number_of_nodes() \
        else []
    for node in order:
        arrive = graph.nodes[node]["delay"] + max(
            (longest[p] for p in sub.predecessors(node)), default=0.0)
        longest[node] = arrive
        period = max(period, arrive)
    return period


def is_legal_retiming(graph: nx.DiGraph, retiming: Dict[str, int]) -> bool:
    return all(
        data["weight"] + retiming.get(v, 0) - retiming.get(u, 0) >= 0
        for u, v, data in graph.edges(data=True))


def _feasible(graph: nx.DiGraph, period: float
              ) -> Optional[Dict[str, int]]:
    """FEAS-style test: iterate Bellman-Ford on the constraint graph.

    Constraints: r(u) - r(v) <= w(e)            for every edge, and
                 r(u) - r(v) <= w_path - 1       for every path with
                 delay > period (handled by the iterative relaxation
    of arrival times, the standard FEAS algorithm).
    """
    retiming = {n: 0 for n in graph.nodes}
    n_nodes = graph.number_of_nodes()
    for _ in range(n_nodes + 1):
        # Compute arrival times under current retiming.
        zero_edges = [(u, v) for u, v, data in graph.edges(data=True)
                      if data["weight"] + retiming[v] - retiming[u] == 0]
        sub = graph.edge_subgraph(zero_edges) if zero_edges \
            else nx.DiGraph()
        arrival: Dict[str, float] = {}
        try:
            order = list(nx.topological_sort(sub)) \
                if sub.number_of_nodes() else []
        except nx.NetworkXUnfeasible:
            return None
        for node in graph.nodes:
            arrival.setdefault(node, graph.nodes[node]["delay"])
        for node in order:
            arrival[node] = graph.nodes[node]["delay"] + max(
                (arrival[p] for p in sub.predecessors(node)), default=0.0)
        violations = [n for n in graph.nodes if arrival[n] > period]
        if not violations:
            if is_legal_retiming(graph, retiming):
                return retiming
            return None
        for node in violations:
            retiming[node] += 1
    return None


def min_period_retiming(graph: nx.DiGraph
                        ) -> Tuple[float, Dict[str, int]]:
    """Binary search over achievable periods with the FEAS test."""
    delays = sorted({graph.nodes[n]["delay"] for n in graph.nodes})
    base = retimed_period(graph, {n: 0 for n in graph.nodes})
    # Candidate periods: path-delay values up to the current period.
    candidates = sorted({d for d in _candidate_periods(graph)
                         if d <= base})
    best_period = base
    best_retiming = {n: 0 for n in graph.nodes}
    lo, hi = 0, len(candidates) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        retiming = _feasible(graph, candidates[mid])
        if retiming is not None:
            best_period = candidates[mid]
            best_retiming = retiming
            hi = mid - 1
        else:
            lo = mid + 1
    del delays
    return best_period, best_retiming


def _candidate_periods(graph: nx.DiGraph) -> List[float]:
    """All distinct path delays (sums of node delays) up to n nodes."""
    totals: Set[float] = set()
    nodes = list(graph.nodes)
    for start in nodes:
        stack = [(start, graph.nodes[start]["delay"], {start})]
        while stack:
            node, total, seen = stack.pop()
            totals.add(total)
            for succ in graph.successors(node):
                if succ in seen or len(seen) > 12:
                    continue
                stack.append((succ, total + graph.nodes[succ]["delay"],
                              seen | {succ}))
    return sorted(totals)


def circuit_to_retiming_graph(circuit: Circuit) -> nx.DiGraph:
    """Netlist -> retiming graph (gates = nodes, latches = weights).

    A host node of zero delay models the environment (inputs/outputs),
    as in the Leiserson-Saxe formulation.
    """
    graph = nx.DiGraph()
    graph.add_node("host", delay=0.0)
    for gate in circuit.gates:
        graph.add_node(gate.name, delay=gate.spec.delay)
    gate_of_net: Dict[str, str] = {}
    latch_of_net: Dict[str, str] = {}
    for gate in circuit.gates:
        gate_of_net[gate.output] = gate.name
    for latch in circuit.latches:
        latch_of_net[latch.output] = latch.data

    def source_of(net: str, weight: int = 0) -> Tuple[str, int]:
        while net in latch_of_net:
            weight += 1
            net = latch_of_net[net]
        if net in gate_of_net:
            return gate_of_net[net], weight
        return "host", weight      # primary input

    def add_edge(src: str, dst: str, weight: int) -> None:
        if graph.has_edge(src, dst):
            graph[src][dst]["weight"] = min(graph[src][dst]["weight"],
                                            weight)
        else:
            graph.add_edge(src, dst, weight=weight)

    for gate in circuit.gates:
        for net in gate.inputs:
            src, weight = source_of(net)
            add_edge(src, gate.name, weight)
    for out in circuit.outputs:
        src, weight = source_of(out)
        add_edge(src, "host", weight)
    return graph


# ----------------------------------------------------------------------
# Low-power retiming on real netlists (Monteiro heuristic)
# ----------------------------------------------------------------------

def _packed_stimulus(circuit: Circuit, vectors: Sequence[Vector]):
    """Pack the stimulus once so every candidate circuit reuses it.

    Retiming scores dozens of candidate netlists against the same
    vectors; candidates keep the original input names, so one
    :class:`PackedVectors` batch serves them all on the fast engines.
    """
    if isinstance(vectors, PackedVectors):
        return vectors
    try:
        return PackedVectors.from_vectors(circuit.inputs, list(vectors))
    except KeyError:
        return vectors      # partial vectors: reference semantics


def glitch_scores(circuit: Circuit, vectors: Sequence[Vector]
                  ) -> Dict[str, float]:
    """Candidate score per gate output: glitching x downstream load."""
    vectors = _packed_stimulus(circuit, vectors)
    sim = EventSimulator(circuit)
    glitches = sim.glitch_report(vectors)
    fanout = circuit.fanout_map()
    scores: Dict[str, float] = {}
    for gate in circuit.gates:
        net = gate.output
        downstream = len(fanout.get(net, []))
        scores[net] = glitches.get(net, 0.0) * (1.0 + downstream)
    return scores


def net_levels(circuit: Circuit) -> Dict[str, int]:
    """Logic level of every net (inputs and latch outputs at 0)."""
    level: Dict[str, int] = {n: 0 for n in circuit.inputs}
    level.update({l.output: 0 for l in circuit.latches})
    for gate in circuit.topological_gates():
        level[gate.output] = 1 + max((level.get(n, 0)
                                      for n in gate.inputs), default=0)
    return level


def pipeline_at_level(circuit: Circuit, threshold: int,
                      name: Optional[str] = None
                      ) -> Tuple[Circuit, int]:
    """Insert one pipeline stage at the given level boundary.

    Every edge from a net at level <= threshold into a gate whose
    output sits above the threshold is registered (one shared register
    per net); shallow primary outputs are registered directly.  Since
    levels increase strictly along every path, each input-to-output
    path crosses exactly one register: the result computes the same
    function one cycle later.  Returns (circuit, registers inserted).
    """
    level = net_levels(circuit)
    new = Circuit(name or f"{circuit.name}_retimed")
    new.add_inputs(circuit.inputs)
    raw: Dict[str, str] = {n: n for n in circuit.inputs}
    registered: Dict[str, str] = {}
    n_registers = 0

    def rename(net: str) -> str:
        driver = circuit._driver.get(net)
        if driver == "input" or not isinstance(driver, Gate):
            return net              # inputs and latch outputs keep names
        return f"c_{net}"

    # Existing latches are copied verbatim (their outputs are roots at
    # level 0); their data nets point at the renamed drivers.
    for latch in circuit.latches:
        new.add_latch(rename(latch.data), output=latch.output,
                      init=latch.init,
                      enable=rename(latch.enable)
                      if latch.enable else None,
                      clocked=latch.clocked)
        raw[latch.output] = latch.output

    def reg_of(net: str) -> str:
        nonlocal n_registers
        if net not in registered:
            registered[net] = new.add_latch(raw[net],
                                            output=f"r_{net}")
            n_registers += 1
        return registered[net]

    for gate in circuit.topological_gates():
        out_level = level[gate.output]
        ins = []
        for net in gate.inputs:
            if out_level > threshold and level.get(net, 0) <= threshold:
                ins.append(reg_of(net))
            else:
                ins.append(raw[net])
        raw[gate.output] = new.add_gate(gate.gate_type, ins,
                                        output=f"c_{gate.output}")
    for out in circuit.outputs:
        source = raw[out] if level.get(out, 0) > threshold \
            else reg_of(out)
        final = new.add_gate("BUF", [source], output=out)
        new.add_output(final)
    return new, n_registers


def pipeline_multistage(circuit: Circuit,
                        thresholds: Sequence[int],
                        name: Optional[str] = None
                        ) -> Tuple[Circuit, int]:
    """Insert one register stage per threshold level (deep pipelining).

    Thresholds must be strictly increasing; every input-to-output path
    crosses exactly ``len(thresholds)`` registers, so the result
    computes the same function ``len(thresholds)`` cycles later.
    """
    levels = sorted(set(thresholds))
    if levels != list(thresholds):
        raise ValueError("thresholds must be strictly increasing")
    current = circuit
    total_registers = 0
    for k, threshold in enumerate(levels):
        # Each earlier stage inserts registers at level <= its
        # threshold; gate levels shift by 0 within this framework
        # because pipeline_at_level recomputes levels on the rebuilt
        # circuit (registers sit at level 0 boundaries).
        adjusted = threshold if k == 0 else threshold - levels[k - 1]
        current, n_regs = pipeline_at_level(
            current, max(1, adjusted),
            name=name or f"{circuit.name}_p{k}")
        total_registers += n_regs
    return current, total_registers


def _cut_score(circuit: Circuit, scores: Dict[str, float],
               threshold: int) -> Tuple[float, int]:
    """(glitch mass killed, registers needed) for a level boundary."""
    level = net_levels(circuit)
    fanout = circuit.fanout_map()
    killed = 0.0
    registers = 0
    for net, lvl in level.items():
        if lvl > threshold:
            continue
        crossing = any(
            isinstance(consumer, Gate)
            and level[consumer.output] > threshold
            for consumer, _pin in fanout.get(net, []))
        shallow_output = net in circuit.outputs and lvl <= threshold
        if crossing or shallow_output:
            registers += 1
            killed += scores.get(net, 0.0)
    return killed, registers


def _probe_level_job(threshold: int, ctx) -> float:
    """Search-pool job: timed power of one pipeline-cut candidate.

    The candidate netlist is rebuilt in the worker from the shipped
    base circuit (cheap, deterministic) so jobs carry only an int;
    :func:`timed_activity_cached` memoizes the timed run through the
    sweep's shared activity store, so re-probed levels — by any
    worker or the parent — splice instead of resimulating.
    """
    candidate, _n = pipeline_at_level(ctx.extras["circuit"], threshold)
    return timed_activity_cached(candidate, ctx.stimulus("probe"),
                                 engine=ctx.engine).average_power()


def choose_low_power_level(circuit: Circuit, vectors: Sequence[Vector],
                           candidates: int = 3,
                           probe_vectors: int = 60,
                           engine: Optional[str] = None,
                           workers: Union[int, str, None] = None) -> int:
    """Boundary level chosen by the Monteiro rule, confirmed by timing
    simulation.

    Levels are ranked by glitch mass killed per register (gates with
    high glitching and high downstream load should receive registers
    on their outputs); the top candidates — always including the
    mid-depth baseline — are then measured with a short event-driven
    probe and the lowest-power one wins.  ``workers`` fans the probe
    measurements over the shared search pool; the chosen level is
    bit-identical to the serial walk.
    """
    vectors = _packed_stimulus(circuit, vectors)
    scores = glitch_scores(circuit, vectors)
    depth = circuit.depth()
    ranked = sorted(
        range(1, depth),
        key=lambda th: -(_cut_score(circuit, scores, th)[0]
                         / max(1, _cut_score(circuit, scores, th)[1])))
    if isinstance(vectors, PackedVectors):
        k = min(probe_vectors, vectors.n)
        probe = PackedVectors(vectors.names, k,
                              {name: w & ((1 << k) - 1)
                               for name, w in vectors.words.items()})
    else:
        probe = list(vectors[:probe_vectors])
    shortlist = sorted(set(ranked[:candidates]) | {max(1, depth // 2)})

    from repro.optimization import search

    powers = search.evaluate_candidates(
        _probe_level_job, shortlist,
        stimuli={"probe": probe},
        extras={"circuit": circuit},
        workers=workers, engine=engine, label="retiming")
    best_level = max(1, depth // 2)
    best_power = float("inf")
    for threshold, power in zip(shortlist, powers):
        if power < best_power:
            best_power = power
            best_level = threshold
    return best_level


@dataclass
class RetimingPowerReport:
    combinational_power: float
    depth_cut_power: float
    low_power_cut_power: float
    depth_cut_registers: int
    low_power_registers: int
    depth_cut_level: int
    low_power_level: int

    @property
    def glitch_saving(self) -> float:
        if self.depth_cut_power == 0:
            return 0.0
        return 1.0 - self.low_power_cut_power / self.depth_cut_power


def evaluate_power_retiming(circuit: Circuit, vectors: Sequence[Vector],
                            engine: Optional[str] = None,
                            workers: Union[int, str, None] = None
                            ) -> RetimingPowerReport:
    """Compare register placements: glitch-aware vs mid-depth cuts.

    All powers are measured with the event-driven (glitch-accurate)
    simulator, which is the entire point of the technique.  Each
    measurement goes through :func:`timed_activity_cached`: the
    circuit name is excluded from :meth:`Circuit.fingerprint`, so
    when the glitch-aware level coincides with the mid-depth cut the
    "smart" netlist is structurally identical to the "plain" one and
    its timed run is served from the activity store.
    """
    vectors = _packed_stimulus(circuit, vectors)
    base = timed_activity_cached(circuit, vectors,
                                 engine=engine).average_power()

    mid = max(1, circuit.depth() // 2)
    plain, plain_regs = pipeline_at_level(circuit, mid, name="plain_cut")
    plain_power = timed_activity_cached(plain, vectors,
                                        engine=engine).average_power()

    smart_level = choose_low_power_level(circuit, vectors, engine=engine,
                                         workers=workers)
    smart, smart_regs = pipeline_at_level(circuit, smart_level,
                                          name="smart_cut")
    smart_power = timed_activity_cached(smart, vectors,
                                        engine=engine).average_power()

    return RetimingPowerReport(
        combinational_power=base,
        depth_cut_power=plain_power,
        low_power_cut_power=smart_power,
        depth_cut_registers=plain_regs,
        low_power_registers=smart_regs,
        depth_cut_level=mid,
        low_power_level=smart_level,
    )
