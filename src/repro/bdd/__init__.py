"""Reduced ordered binary decision diagrams (ROBDDs).

A from-scratch BDD package in the style of Bryant's original algorithms
[84].  It provides the symbolic substrate used throughout the framework:

- signal-probability computation for probabilistic power estimation,
- implicit FSM reachability and Markov analysis (Section III-H),
- predictor-function derivation for precomputation (Section III-I),
- observability don't-care computation for guarded evaluation,
- node counts for the Ferrandi capacitance model (Section II-B1).

Example
-------
>>> from repro.bdd import BddManager
>>> mgr = BddManager()
>>> a, b = mgr.var('a'), mgr.var('b')
>>> f = a & ~b
>>> mgr.sat_count(f, ['a', 'b'])
1
"""

from repro.bdd.manager import BddManager, BddNode, Bdd

__all__ = ["BddManager", "BddNode", "Bdd"]
