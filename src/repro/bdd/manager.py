"""ROBDD manager with unique/computed tables.

The implementation follows Bryant's classic formulation: nodes are
triples ``(level, low, high)`` hash-consed in a unique table, and all
Boolean operations are reduced to the if-then-else operator ``ite``
memoized in a computed table.  Complement edges are deliberately not
used; clarity and debuggability win over the constant-factor saving.

Node identity is an integer index into the manager's node array, so
BDD equality is integer equality (canonical form).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class BddNode:
    """Internal BDD node: decision variable level plus two children."""

    __slots__ = ("level", "low", "high")

    def __init__(self, level: int, low: int, high: int) -> None:
        self.level = level
        self.low = low
        self.high = high

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BddNode(level={self.level}, low={self.low}, high={self.high})"


# Terminal node ids.
FALSE = 0
TRUE = 1
_TERMINAL_LEVEL = 1 << 30


class Bdd:
    """Handle to a BDD function: a (manager, root-id) pair.

    Supports the Boolean operators ``&``, ``|``, ``^``, ``~`` and the
    comparison ``==`` (canonical, O(1)).  All heavy lifting is delegated
    to the owning :class:`BddManager`.
    """

    __slots__ = ("manager", "root")

    def __init__(self, manager: "BddManager", root: int) -> None:
        self.manager = manager
        self.root = root

    def _check(self, other: "Bdd") -> None:
        if self.manager is not other.manager:
            raise ValueError("cannot combine BDDs from different managers")

    def __and__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager.apply_and(self.root, other.root))

    def __or__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager.apply_or(self.root, other.root))

    def __xor__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager.apply_xor(self.root, other.root))

    def __invert__(self) -> "Bdd":
        return Bdd(self.manager, self.manager.apply_not(self.root))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bdd)
            and self.manager is other.manager
            and self.root == other.root
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.root))

    def __bool__(self) -> bool:
        raise TypeError(
            "Bdd truth value is ambiguous; use .is_true()/.is_false() "
            "or compare with ==")

    def is_true(self) -> bool:
        return self.root == TRUE

    def is_false(self) -> bool:
        return self.root == FALSE

    def ite(self, then_f: "Bdd", else_f: "Bdd") -> "Bdd":
        self._check(then_f)
        self._check(else_f)
        return Bdd(
            self.manager,
            self.manager.ite(self.root, then_f.root, else_f.root))

    def implies(self, other: "Bdd") -> "Bdd":
        return ~self | other

    def iff(self, other: "Bdd") -> "Bdd":
        return ~(self ^ other)

    def restrict(self, assignment: Dict[str, bool]) -> "Bdd":
        """Cofactor with respect to a partial variable assignment."""
        return Bdd(self.manager, self.manager.restrict(self.root, assignment))

    def compose(self, name: str, g: "Bdd") -> "Bdd":
        """Substitute function ``g`` for variable ``name``."""
        self._check(g)
        return Bdd(self.manager, self.manager.compose(self.root, name, g.root))

    def exists(self, names: Iterable[str]) -> "Bdd":
        return Bdd(self.manager, self.manager.exists(self.root, names))

    def forall(self, names: Iterable[str]) -> "Bdd":
        return Bdd(self.manager, self.manager.forall(self.root, names))

    def support(self) -> List[str]:
        return self.manager.support(self.root)

    def node_count(self) -> int:
        return self.manager.node_count(self.root)

    def sat_count(self, over: Optional[Sequence[str]] = None) -> int:
        return self.manager.sat_count(self.root, over)

    def probability(self, var_probs: Optional[Dict[str, float]] = None) -> float:
        return self.manager.probability(self.root, var_probs)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return self.manager.evaluate(self.root, assignment)

    def satisfy_one(self) -> Optional[Dict[str, bool]]:
        return self.manager.satisfy_one(self.root)

    def satisfy_all(self) -> Iterator[Dict[str, bool]]:
        return self.manager.satisfy_all(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bdd(root={self.root}, nodes={self.node_count()})"


class BddManager:
    """Owner of the node store, unique table, and computed table.

    Variables are ordered by registration order (``var`` assigns the next
    level); an explicit order can be fixed up-front with
    :meth:`declare`.
    """

    def __init__(self) -> None:
        # Nodes 0 and 1 are the terminals; give them a level below all
        # variables so cofactor logic never descends into them.
        self._nodes: List[BddNode] = [
            BddNode(_TERMINAL_LEVEL, FALSE, FALSE),
            BddNode(_TERMINAL_LEVEL, TRUE, TRUE),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._var_levels: Dict[str, int] = {}
        self._level_vars: List[str] = []

    # ------------------------------------------------------------------
    # Variable handling
    # ------------------------------------------------------------------
    def declare(self, *names: str) -> List[Bdd]:
        """Register variables in the given order; return their BDDs."""
        return [self.var(n) for n in names]

    def var(self, name: str) -> Bdd:
        """Return the BDD for a single variable, registering it if new."""
        if name not in self._var_levels:
            self._var_levels[name] = len(self._level_vars)
            self._level_vars.append(name)
        level = self._var_levels[name]
        return Bdd(self, self._mk(level, FALSE, TRUE))

    def nvar(self, name: str) -> Bdd:
        """Negated variable (convenience)."""
        return ~self.var(name)

    @property
    def variables(self) -> List[str]:
        return list(self._level_vars)

    def level_of(self, name: str) -> int:
        return self._var_levels[name]

    @property
    def true(self) -> Bdd:
        return Bdd(self, TRUE)

    @property
    def false(self) -> Bdd:
        return Bdd(self, FALSE)

    def size(self) -> int:
        """Total number of live nodes in the manager (incl. terminals)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node_id = self._unique.get(key)
        if node_id is None:
            node_id = len(self._nodes)
            self._nodes.append(BddNode(level, low, high))
            self._unique[key] = node_id
        return node_id

    def _node(self, node_id: int) -> BddNode:
        return self._nodes[node_id]

    # ------------------------------------------------------------------
    # Core operation: ite
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        # Terminal cases.
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f

        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached

        top = min(self._nodes[f].level, self._nodes[g].level,
                  self._nodes[h].level)
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node_id: int, level: int) -> Tuple[int, int]:
        node = self._nodes[node_id]
        if node.level == level:
            return node.low, node.high
        return node_id, node_id

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def restrict(self, f: int, assignment: Dict[str, bool]) -> int:
        by_level = {self._var_levels[n]: v for n, v in assignment.items()}
        cache: Dict[int, int] = {}

        def walk(node_id: int) -> int:
            if node_id <= TRUE:
                return node_id
            hit = cache.get(node_id)
            if hit is not None:
                return hit
            node = self._nodes[node_id]
            if node.level in by_level:
                result = walk(node.high if by_level[node.level] else node.low)
            else:
                result = self._mk(node.level, walk(node.low), walk(node.high))
            cache[node_id] = result
            return result

        return walk(f)

    def compose(self, f: int, name: str, g: int) -> int:
        level = self._var_levels[name]
        cache: Dict[int, int] = {}

        def walk(node_id: int) -> int:
            node = self._nodes[node_id]
            if node_id <= TRUE or node.level > level:
                return node_id
            hit = cache.get(node_id)
            if hit is not None:
                return hit
            if node.level == level:
                result = self.ite(g, node.high, node.low)
            else:
                low = walk(node.low)
                high = walk(node.high)
                # Children may now depend on variables above node.level,
                # so rebuild with ite on the decision variable.
                var_id = self._mk(node.level, FALSE, TRUE)
                result = self.ite(var_id, high, low)
            cache[node_id] = result
            return result

        return walk(f)

    def exists(self, f: int, names: Iterable[str]) -> int:
        levels = frozenset(self._var_levels[n] for n in names)
        if not levels:
            return f
        cache: Dict[int, int] = {}

        def walk(node_id: int) -> int:
            if node_id <= TRUE:
                return node_id
            hit = cache.get(node_id)
            if hit is not None:
                return hit
            node = self._nodes[node_id]
            low = walk(node.low)
            high = walk(node.high)
            if node.level in levels:
                result = self.apply_or(low, high)
            else:
                result = self._mk(node.level, low, high)
            cache[node_id] = result
            return result

        return walk(f)

    def forall(self, f: int, names: Iterable[str]) -> int:
        return self.apply_not(self.exists(self.apply_not(f), names))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, f: int) -> List[str]:
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node_id = stack.pop()
            if node_id <= TRUE or node_id in seen:
                continue
            seen.add(node_id)
            node = self._nodes[node_id]
            levels.add(node.level)
            stack.append(node.low)
            stack.append(node.high)
        return [self._level_vars[lvl] for lvl in sorted(levels)]

    def node_count(self, f: int) -> int:
        """Number of internal (non-terminal) nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        count = 0
        while stack:
            node_id = stack.pop()
            if node_id <= TRUE or node_id in seen:
                continue
            seen.add(node_id)
            count += 1
            node = self._nodes[node_id]
            stack.append(node.low)
            stack.append(node.high)
        return count

    def evaluate(self, f: int, assignment: Dict[str, bool]) -> bool:
        node_id = f
        while node_id > TRUE:
            node = self._nodes[node_id]
            name = self._level_vars[node.level]
            node_id = node.high if assignment[name] else node.low
        return node_id == TRUE

    def sat_count(self, f: int, over: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over the variable set ``over``.

        ``over`` defaults to all registered variables.  It must contain
        the support of ``f``.
        """
        if over is None:
            over = self._level_vars
        levels = sorted(self._var_levels[n] for n in over)
        index = {lvl: i for i, lvl in enumerate(levels)}
        n = len(levels)
        cache: Dict[int, int] = {}

        def walk(node_id: int) -> int:
            # Returns count over variables strictly below the node's level
            # position; caller scales for skipped levels.
            if node_id == FALSE:
                return 0
            if node_id == TRUE:
                return 1
            hit = cache.get(node_id)
            if hit is None:
                node = self._nodes[node_id]
                pos = index[node.level]
                low = walk(node.low) * (1 << self._skipped(node.low, pos, index, n))
                high = walk(node.high) * (1 << self._skipped(node.high, pos, index, n))
                hit = low + high
                cache[node_id] = hit
            return hit

        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        root_pos = index[self._nodes[f].level]
        return walk(f) << root_pos

    def _skipped(self, child: int, parent_pos: int,
                 index: Dict[int, int], n: int) -> int:
        if child <= TRUE:
            child_pos = n
        else:
            child_pos = index[self._nodes[child].level]
        return child_pos - parent_pos - 1

    def probability(self, f: int,
                    var_probs: Optional[Dict[str, float]] = None) -> float:
        """Probability that ``f`` evaluates true under independent inputs.

        ``var_probs`` maps each variable name to its probability of being
        1; unspecified variables default to 0.5.  This is the standard
        BDD signal-probability computation used by probabilistic power
        estimators [27]-[31].
        """
        probs = var_probs or {}
        cache: Dict[int, float] = {FALSE: 0.0, TRUE: 1.0}

        def walk(node_id: int) -> float:
            hit = cache.get(node_id)
            if hit is not None:
                return hit
            node = self._nodes[node_id]
            p = probs.get(self._level_vars[node.level], 0.5)
            result = (1.0 - p) * walk(node.low) + p * walk(node.high)
            cache[node_id] = result
            return result

        return walk(f)

    def satisfy_one(self, f: int) -> Optional[Dict[str, bool]]:
        if f == FALSE:
            return None
        assignment: Dict[str, bool] = {}
        node_id = f
        while node_id > TRUE:
            node = self._nodes[node_id]
            name = self._level_vars[node.level]
            if node.high != FALSE:
                assignment[name] = True
                node_id = node.high
            else:
                assignment[name] = False
                node_id = node.low
        return assignment

    def satisfy_all(self, f: int) -> Iterator[Dict[str, bool]]:
        """Yield all satisfying assignments (over support variables only)."""

        def walk(node_id: int, partial: Dict[str, bool]
                 ) -> Iterator[Dict[str, bool]]:
            if node_id == FALSE:
                return
            if node_id == TRUE:
                yield dict(partial)
                return
            node = self._nodes[node_id]
            name = self._level_vars[node.level]
            partial[name] = False
            yield from walk(node.low, partial)
            partial[name] = True
            yield from walk(node.high, partial)
            del partial[name]

        yield from walk(f, {})

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def from_truth_table(self, names: Sequence[str],
                         minterms: Iterable[int]) -> Bdd:
        """Build the function whose on-set is ``minterms``.

        Bit i of a minterm corresponds to ``names[i]`` (names[0] is the
        least-significant bit).
        """
        result = FALSE
        for m in minterms:
            cube = TRUE
            for i, name in enumerate(names):
                v = self._mk(self._register(name), FALSE, TRUE)
                lit = v if (m >> i) & 1 else self.apply_not(v)
                cube = self.apply_and(cube, lit)
            result = self.apply_or(result, cube)
        return Bdd(self, result)

    def _register(self, name: str) -> int:
        if name not in self._var_levels:
            self._var_levels[name] = len(self._level_vars)
            self._level_vars.append(name)
        return self._var_levels[name]

    def cube(self, assignment: Dict[str, bool]) -> Bdd:
        """Conjunction of literals given by ``assignment``."""
        result = TRUE
        for name, value in assignment.items():
            v = self.var(name).root
            lit = v if value else self.apply_not(v)
            result = self.apply_and(result, lit)
        return Bdd(self, result)
