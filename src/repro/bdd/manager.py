"""ROBDD manager with unique/computed tables.

The implementation follows Bryant's classic formulation: nodes are
triples ``(level, low, high)`` hash-consed in a unique table, and all
Boolean operations are reduced to the if-then-else operator ``ite``
memoized in a computed table.  Complement edges are deliberately not
used; clarity and debuggability win over the constant-factor saving.

Node identity is an integer index into the manager's node array, so
BDD equality is integer equality (canonical form).

Engineering notes (the "production" layer on top of the textbook):

- Every traversal (``ite``, ``and_exists``, ``restrict``, ``compose``,
  ``sat_count``, ``probability``, ``satisfy_all``) runs on an explicit
  work stack, so depth is bounded by heap, not by the Python recursion
  limit — circuits with thousand-level variable chains are fine.
- ``and_exists`` is the fused relational product (conjoin and
  existentially quantify in one pass, Burch-style) with its own
  computed table and early termination on a TRUE cofactor; ``exists``
  and ``forall`` are thin wrappers over it.
- ``gc()`` is mark-and-sweep over the externally referenced roots
  (every live :class:`Bdd` handle, tracked by weak references) with
  table compaction; live handles are remapped in place.
- ``reorder()`` is Rudell sifting built on in-place adjacent-level
  swaps; node ids keep their semantic function through swaps, so
  handles stay valid without remapping.  An optional auto trigger
  fires when the node store outgrows a threshold.
- ``stats()`` exposes the telemetry: node/cache sizes, hit rates, GC
  and reorder counts.

Safety rule for the automatic triggers (GC and reordering renumber or
restructure nodes): they fire only from the :class:`Bdd` operator
wrappers, *before* any raw root id has been read, never inside a
manager-level operation.  Code that holds raw integer roots (the
manager's own internals, :mod:`repro.logic.shannon`) is therefore
never invalidated mid-flight.
"""

from __future__ import annotations

import weakref
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from repro import obs


class BddNode:
    """Internal BDD node: decision variable level plus two children."""

    __slots__ = ("level", "low", "high")

    def __init__(self, level: int, low: int, high: int) -> None:
        self.level = level
        self.low = low
        self.high = high

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BddNode(level={self.level}, low={self.low}, high={self.high})"


# Terminal node ids.
FALSE = 0
TRUE = 1
_TERMINAL_LEVEL = 1 << 30

# Work-stack task tags shared by the iterative traversals.
_EXPAND = 0
_COMBINE = 1
_FORWARD = 2
_CHECK_LOW = 3
_COMBINE_OR = 4


class Bdd:
    """Handle to a BDD function: a (manager, root-id) pair.

    Supports the Boolean operators ``&``, ``|``, ``^``, ``~`` and the
    comparison ``==`` (canonical, O(1)).  All heavy lifting is delegated
    to the owning :class:`BddManager`.

    Handles are weakly registered with their manager: they are the GC
    roots, and garbage collection / reordering updates them in place.
    Note that ``hash(bdd)`` is therefore only stable between ``gc()``
    calls — do not key long-lived dicts by :class:`Bdd` across a GC.
    """

    __slots__ = ("manager", "root", "__weakref__")

    def __init__(self, manager: "BddManager", root: int) -> None:
        self.manager = manager
        self.root = root
        manager._register_handle(self)

    def _check(self, other: "Bdd") -> None:
        if self.manager is not other.manager:
            raise ValueError("cannot combine BDDs from different managers")

    def __and__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.apply_and(self.root, other.root))

    def __or__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.apply_or(self.root, other.root))

    def __xor__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.apply_xor(self.root, other.root))

    def __invert__(self) -> "Bdd":
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.apply_not(self.root))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bdd):
            return NotImplemented
        return self.manager is other.manager and self.root == other.root

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return hash((id(self.manager), self.root))

    def __bool__(self) -> bool:
        raise TypeError(
            "Bdd truth value is ambiguous; use .is_true()/.is_false() "
            "or compare with ==")

    def is_true(self) -> bool:
        return self.root == TRUE

    def is_false(self) -> bool:
        return self.root == FALSE

    def ite(self, then_f: "Bdd", else_f: "Bdd") -> "Bdd":
        self._check(then_f)
        self._check(else_f)
        self.manager._maybe_auto()
        return Bdd(
            self.manager,
            self.manager.ite(self.root, then_f.root, else_f.root))

    def implies(self, other: "Bdd") -> "Bdd":
        return ~self | other

    def iff(self, other: "Bdd") -> "Bdd":
        return ~(self ^ other)

    def restrict(self, assignment: Dict[str, bool]) -> "Bdd":
        """Cofactor with respect to a partial variable assignment."""
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.restrict(self.root, assignment))

    def compose(self, name: str, g: "Bdd") -> "Bdd":
        """Substitute function ``g`` for variable ``name``."""
        self._check(g)
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.compose(self.root, name, g.root))

    def exists(self, names: Iterable[str]) -> "Bdd":
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.exists(self.root, names))

    def forall(self, names: Iterable[str]) -> "Bdd":
        self.manager._maybe_auto()
        return Bdd(self.manager, self.manager.forall(self.root, names))

    def and_exists(self, other: "Bdd", names: Iterable[str]) -> "Bdd":
        """Fused relational product: ``exists names (self & other)``."""
        self._check(other)
        self.manager._maybe_auto()
        return Bdd(self.manager,
                   self.manager.and_exists(self.root, other.root, names))

    def support(self) -> List[str]:
        return self.manager.support(self.root)

    def node_count(self) -> int:
        return self.manager.node_count(self.root)

    def sat_count(self, over: Optional[Sequence[str]] = None) -> int:
        return self.manager.sat_count(self.root, over)

    def probability(self, var_probs: Optional[Dict[str, float]] = None) -> float:
        return self.manager.probability(self.root, var_probs)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return self.manager.evaluate(self.root, assignment)

    def satisfy_one(self) -> Optional[Dict[str, bool]]:
        return self.manager.satisfy_one(self.root)

    def satisfy_all(self) -> Iterator[Dict[str, bool]]:
        return self.manager.satisfy_all(self.root)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Bdd(root={self.root}, nodes={self.node_count()})"


class BddManager:
    """Owner of the node store, unique table, and computed tables.

    Variables are ordered by registration order (``var`` assigns the next
    level); an explicit order can be fixed up-front with
    :meth:`declare` and changed later with :meth:`reorder`.

    Parameters
    ----------
    auto_reorder:
        When true, :meth:`reorder` (Rudell sifting) fires automatically
        once the node store exceeds ``auto_reorder_threshold``; the
        threshold then doubles (CUDD-style backoff).  Off by default —
        reordering is semantics-preserving but changes node counts.
    auto_gc_threshold:
        Node-store size above which mark-and-sweep GC runs
        automatically at the next safe point.
    cache_limit:
        Computed tables larger than this are aged out (cleared) at the
        next safe point, bounding memory on long-running managers.
    """

    def __init__(self, auto_reorder: bool = False,
                 auto_reorder_threshold: int = 10_000,
                 auto_gc_threshold: int = 1_000_000,
                 cache_limit: int = 1 << 20) -> None:
        # Nodes 0 and 1 are the terminals; give them a level below all
        # variables so cofactor logic never descends into them.
        self._nodes: List[BddNode] = [
            BddNode(_TERMINAL_LEVEL, FALSE, FALSE),
            BddNode(_TERMINAL_LEVEL, TRUE, TRUE),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._ae_cache: Dict[Tuple[int, int, int], int] = {}
        self._cube_ids: Dict[FrozenSet[int], int] = {}
        self._var_levels: Dict[str, int] = {}
        self._level_vars: List[str] = []
        # External-root registry: id(handle) -> weakref.  Keyed by
        # identity, NOT equality — distinct handles often share a root
        # and must each be tracked (a WeakSet would coalesce them and
        # lose roots when the first registrant dies).
        self._handles: Dict[int, "weakref.ref[Bdd]"] = {}

        self.auto_reorder = auto_reorder
        self.auto_reorder_threshold = auto_reorder_threshold
        self.auto_gc_threshold = auto_gc_threshold
        self.cache_limit = cache_limit

        # Telemetry counters (see stats()).
        self._unique_hits = 0
        self._unique_misses = 0
        self._ite_hits = 0
        self._ite_misses = 0
        self._ae_hits = 0
        self._ae_misses = 0
        self._gc_runs = 0
        self._gc_reclaimed = 0
        self._reorders = 0
        self._cache_ages = 0
        self._peak_nodes = 2

    # ------------------------------------------------------------------
    # Variable handling
    # ------------------------------------------------------------------
    def declare(self, *names: str) -> List[Bdd]:
        """Register variables in the given order; return their BDDs."""
        return [self.var(n) for n in names]

    def var(self, name: str) -> Bdd:
        """Return the BDD for a single variable, registering it if new."""
        if name not in self._var_levels:
            self._var_levels[name] = len(self._level_vars)
            self._level_vars.append(name)
        level = self._var_levels[name]
        return Bdd(self, self._mk(level, FALSE, TRUE))

    def nvar(self, name: str) -> Bdd:
        """Negated variable (convenience)."""
        return ~self.var(name)

    @property
    def variables(self) -> List[str]:
        """Variable names in current level order (top first)."""
        return list(self._level_vars)

    def level_of(self, name: str) -> int:
        return self._var_levels[name]

    @property
    def true(self) -> Bdd:
        return Bdd(self, TRUE)

    @property
    def false(self) -> Bdd:
        return Bdd(self, FALSE)

    def size(self) -> int:
        """Total number of stored nodes in the manager (incl. terminals,
        incl. garbage not yet collected)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node_id = self._unique.get(key)
        if node_id is None:
            self._unique_misses += 1
            node_id = len(self._nodes)
            self._nodes.append(BddNode(level, low, high))
            self._unique[key] = node_id
            if node_id >= self._peak_nodes:
                self._peak_nodes = node_id + 1
        else:
            self._unique_hits += 1
        return node_id

    def _node(self, node_id: int) -> BddNode:
        return self._nodes[node_id]

    # ------------------------------------------------------------------
    # Core operation: ite (iterative, explicit work stack)
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        nodes = self._nodes
        cache = self._ite_cache
        tasks: List[Tuple[int, ...]] = [(_EXPAND, f, g, h)]
        vals: List[int] = []
        push = tasks.append
        while tasks:
            task = tasks.pop()
            if task[0] == _EXPAND:
                _, f, g, h = task
                # Terminal cases.
                if f == TRUE:
                    vals.append(g)
                    continue
                if f == FALSE:
                    vals.append(h)
                    continue
                if g == h:
                    vals.append(g)
                    continue
                if g == TRUE and h == FALSE:
                    vals.append(f)
                    continue
                key = (f, g, h)
                cached = cache.get(key)
                if cached is not None:
                    self._ite_hits += 1
                    vals.append(cached)
                    continue
                self._ite_misses += 1
                fn = nodes[f]
                gn = nodes[g]
                hn = nodes[h]
                top = fn.level
                if gn.level < top:
                    top = gn.level
                if hn.level < top:
                    top = hn.level
                f0, f1 = (fn.low, fn.high) if fn.level == top else (f, f)
                g0, g1 = (gn.low, gn.high) if gn.level == top else (g, g)
                h0, h1 = (hn.low, hn.high) if hn.level == top else (h, h)
                push((_COMBINE, top, key))
                push((_EXPAND, f1, g1, h1))
                push((_EXPAND, f0, g0, h0))
            else:  # _COMBINE
                _, top, key = task
                high = vals.pop()
                low = vals.pop()
                result = self._mk(top, low, high)
                cache[key] = result
                vals.append(result)
        return vals[0]

    def _cofactors(self, node_id: int, level: int) -> Tuple[int, int]:
        node = self._nodes[node_id]
        if node.level == level:
            return node.low, node.high
        return node_id, node_id

    # ------------------------------------------------------------------
    # Derived operations
    # ------------------------------------------------------------------
    def apply_not(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def apply_and(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def apply_or(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def apply_xor(self, f: int, g: int) -> int:
        return self.ite(f, self.apply_not(g), g)

    def restrict(self, f: int, assignment: Dict[str, bool]) -> int:
        by_level = {self._var_levels[n]: v for n, v in assignment.items()}
        if not by_level or f <= TRUE:
            return f
        nodes = self._nodes
        cache: Dict[int, int] = {}
        tasks: List[Tuple[int, int]] = [(_EXPAND, f)]
        vals: List[int] = []
        push = tasks.append
        while tasks:
            tag, nid = tasks.pop()
            if tag == _EXPAND:
                if nid <= TRUE:
                    vals.append(nid)
                    continue
                hit = cache.get(nid)
                if hit is not None:
                    vals.append(hit)
                    continue
                node = nodes[nid]
                value = by_level.get(node.level)
                if value is not None:
                    push((_FORWARD, nid))
                    push((_EXPAND, node.high if value else node.low))
                else:
                    push((_COMBINE, nid))
                    push((_EXPAND, node.high))
                    push((_EXPAND, node.low))
            elif tag == _COMBINE:
                node = nodes[nid]
                high = vals.pop()
                low = vals.pop()
                result = self._mk(node.level, low, high)
                cache[nid] = result
                vals.append(result)
            else:  # _FORWARD: restricted level, pass the child through
                result = vals.pop()
                cache[nid] = result
                vals.append(result)
        return vals[0]

    def compose(self, f: int, name: str, g: int) -> int:
        level = self._var_levels[name]
        nodes = self._nodes
        cache: Dict[int, int] = {}
        tasks: List[Tuple[int, int]] = [(_EXPAND, f)]
        vals: List[int] = []
        push = tasks.append
        while tasks:
            tag, nid = tasks.pop()
            if tag == _EXPAND:
                node = nodes[nid]
                if nid <= TRUE or node.level > level:
                    vals.append(nid)
                    continue
                hit = cache.get(nid)
                if hit is not None:
                    vals.append(hit)
                    continue
                if node.level == level:
                    result = self.ite(g, node.high, node.low)
                    cache[nid] = result
                    vals.append(result)
                    continue
                push((_COMBINE, nid))
                push((_EXPAND, node.high))
                push((_EXPAND, node.low))
            else:  # _COMBINE
                node = nodes[nid]
                high = vals.pop()
                low = vals.pop()
                # Children may now depend on variables above node.level,
                # so rebuild with ite on the decision variable.
                var_id = self._mk(node.level, FALSE, TRUE)
                result = self.ite(var_id, high, low)
                cache[nid] = result
                vals.append(result)
        return vals[0]

    # ------------------------------------------------------------------
    # Fused relational product: exists names (f & g)
    # ------------------------------------------------------------------
    def and_exists(self, f: int, g: int, names: Iterable[str]) -> int:
        """Conjoin-and-quantify in one traversal (Burch-style).

        Equivalent to ``exists(apply_and(f, g), names)`` but never
        builds the intermediate conjunction, short-circuits to TRUE as
        soon as a quantified cofactor hits TRUE, and memoizes results
        in a dedicated computed table keyed by the (interned)
        quantified variable set — so fixpoint loops that reuse the same
        relation and cube hit the cache across iterations.
        """
        levels = frozenset(self._var_levels[n] for n in names)
        if not levels:
            return self.ite(f, g, FALSE)
        cube_id = self._cube_ids.get(levels)
        if cube_id is None:
            cube_id = len(self._cube_ids)
            self._cube_ids[levels] = cube_id
        max_level = max(levels)
        nodes = self._nodes
        cache = self._ae_cache
        tasks: List[Tuple[int, ...]] = [(_EXPAND, f, g)]
        vals: List[int] = []
        push = tasks.append
        while tasks:
            task = tasks.pop()
            tag = task[0]
            if tag == _EXPAND:
                _, f, g = task
                if f == FALSE or g == FALSE:
                    vals.append(FALSE)
                    continue
                if g == TRUE or f == g:
                    if f == TRUE:
                        vals.append(TRUE)
                        continue
                    g = TRUE
                elif f == TRUE:
                    f, g = g, TRUE
                elif f > g:       # AND is commutative: canonical key
                    f, g = g, f
                key = (f, g, cube_id)
                cached = cache.get(key)
                if cached is not None:
                    self._ae_hits += 1
                    vals.append(cached)
                    continue
                self._ae_misses += 1
                fn = nodes[f]
                gn = nodes[g]
                top = fn.level if fn.level < gn.level else gn.level
                if top > max_level:
                    # Below every quantified variable: plain conjunction.
                    result = self.ite(f, g, FALSE)
                    cache[key] = result
                    vals.append(result)
                    continue
                f0, f1 = (fn.low, fn.high) if fn.level == top else (f, f)
                g0, g1 = (gn.low, gn.high) if gn.level == top else (g, g)
                if top in levels:
                    push((_CHECK_LOW, key, f1, g1))
                    push((_EXPAND, f0, g0))
                else:
                    push((_COMBINE, top, key))
                    push((_EXPAND, f1, g1))
                    push((_EXPAND, f0, g0))
            elif tag == _COMBINE:
                _, top, key = task
                high = vals.pop()
                low = vals.pop()
                result = self._mk(top, low, high)
                cache[key] = result
                vals.append(result)
            elif tag == _CHECK_LOW:
                _, key, f1, g1 = task
                low = vals.pop()
                if low == TRUE:   # early termination: or-result is TRUE
                    cache[key] = TRUE
                    vals.append(TRUE)
                else:
                    push((_COMBINE_OR, key, low))
                    push((_EXPAND, f1, g1))
            else:  # _COMBINE_OR
                _, key, low = task
                high = vals.pop()
                result = self.ite(low, TRUE, high)
                cache[key] = result
                vals.append(result)
        return vals[0]

    def exists(self, f: int, names: Iterable[str]) -> int:
        return self.and_exists(f, TRUE, names)

    def forall(self, f: int, names: Iterable[str]) -> int:
        return self.apply_not(self.and_exists(self.apply_not(f), TRUE, names))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def support(self, f: int) -> List[str]:
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node_id = stack.pop()
            if node_id <= TRUE or node_id in seen:
                continue
            seen.add(node_id)
            node = self._nodes[node_id]
            levels.add(node.level)
            stack.append(node.low)
            stack.append(node.high)
        return [self._level_vars[lvl] for lvl in sorted(levels)]

    def node_count(self, f: int) -> int:
        """Number of internal (non-terminal) nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        count = 0
        while stack:
            node_id = stack.pop()
            if node_id <= TRUE or node_id in seen:
                continue
            seen.add(node_id)
            count += 1
            node = self._nodes[node_id]
            stack.append(node.low)
            stack.append(node.high)
        return count

    def evaluate(self, f: int, assignment: Dict[str, bool]) -> bool:
        node_id = f
        while node_id > TRUE:
            node = self._nodes[node_id]
            name = self._level_vars[node.level]
            node_id = node.high if assignment[name] else node.low
        return node_id == TRUE

    def sat_count(self, f: int, over: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over the variable set ``over``.

        ``over`` defaults to all registered variables.  It must contain
        the support of ``f``.
        """
        if over is None:
            over = self._level_vars
        levels = sorted(self._var_levels[n] for n in over)
        index = {lvl: i for i, lvl in enumerate(levels)}
        n = len(levels)
        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        nodes = self._nodes
        # cache[node] counts over variables strictly below the node's
        # level position; edges scale for skipped levels.
        cache: Dict[int, int] = {FALSE: 0, TRUE: 1}
        stack = [f]
        while stack:
            nid = stack[-1]
            if nid in cache:
                stack.pop()
                continue
            node = nodes[nid]
            lo, hi = node.low, node.high
            ready = True
            if lo not in cache:
                stack.append(lo)
                ready = False
            if hi not in cache:
                stack.append(hi)
                ready = False
            if not ready:
                continue
            pos = index[node.level]
            low = cache[lo] * (1 << self._skipped(lo, pos, index, n))
            high = cache[hi] * (1 << self._skipped(hi, pos, index, n))
            cache[nid] = low + high
            stack.pop()
        root_pos = index[nodes[f].level]
        return cache[f] << root_pos

    def _skipped(self, child: int, parent_pos: int,
                 index: Dict[int, int], n: int) -> int:
        if child <= TRUE:
            child_pos = n
        else:
            child_pos = index[self._nodes[child].level]
        return child_pos - parent_pos - 1

    def probability(self, f: int,
                    var_probs: Optional[Dict[str, float]] = None) -> float:
        """Probability that ``f`` evaluates true under independent inputs.

        ``var_probs`` maps each variable name to its probability of being
        1; unspecified variables default to 0.5.  This is the standard
        BDD signal-probability computation used by probabilistic power
        estimators [27]-[31].
        """
        probs = var_probs or {}
        nodes = self._nodes
        level_vars = self._level_vars
        cache: Dict[int, float] = {FALSE: 0.0, TRUE: 1.0}
        stack = [f]
        while stack:
            nid = stack[-1]
            if nid in cache:
                stack.pop()
                continue
            node = nodes[nid]
            lo, hi = node.low, node.high
            ready = True
            if lo not in cache:
                stack.append(lo)
                ready = False
            if hi not in cache:
                stack.append(hi)
                ready = False
            if not ready:
                continue
            p = probs.get(level_vars[node.level], 0.5)
            cache[nid] = (1.0 - p) * cache[lo] + p * cache[hi]
            stack.pop()
        return cache[f]

    def satisfy_one(self, f: int) -> Optional[Dict[str, bool]]:
        if f == FALSE:
            return None
        assignment: Dict[str, bool] = {}
        node_id = f
        while node_id > TRUE:
            node = self._nodes[node_id]
            name = self._level_vars[node.level]
            if node.high != FALSE:
                assignment[name] = True
                node_id = node.high
            else:
                assignment[name] = False
                node_id = node.low
        return assignment

    def satisfy_all(self, f: int) -> Iterator[Dict[str, bool]]:
        """Yield all satisfying assignments (over support variables only)."""
        nodes = self._nodes
        level_vars = self._level_vars

        def walk() -> Iterator[Dict[str, bool]]:
            # Explicit stack of (node, path); low branch explored first
            # to preserve the historical yield order.
            stack: List[Tuple[int, Tuple[Tuple[str, bool], ...]]] = \
                [(f, ())]
            while stack:
                node_id, path = stack.pop()
                if node_id == FALSE:
                    continue
                if node_id == TRUE:
                    yield dict(path)
                    continue
                node = nodes[node_id]
                name = level_vars[node.level]
                stack.append((node.high, path + ((name, True),)))
                stack.append((node.low, path + ((name, False),)))

        return walk()

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def _register_handle(self, handle: "Bdd") -> None:
        key = id(handle)
        refs = self._handles
        refs[key] = weakref.ref(
            handle, lambda _ref, _key=key, _refs=refs: _refs.pop(_key, None))

    def _iter_handles(self) -> List["Bdd"]:
        handles = []
        for ref in list(self._handles.values()):
            handle = ref()
            if handle is not None:
                handles.append(handle)
        return handles

    def _external_roots(self) -> Set[int]:
        return {h.root for h in self._iter_handles() if h.root > TRUE}

    def _live_size(self, roots: Iterable[int]) -> int:
        """Internal nodes reachable from ``roots``."""
        nodes = self._nodes
        mark: Set[int] = set()
        stack = [r for r in roots if r > TRUE]
        while stack:
            nid = stack.pop()
            if nid in mark:
                continue
            mark.add(nid)
            node = nodes[nid]
            if node.low > TRUE:
                stack.append(node.low)
            if node.high > TRUE:
                stack.append(node.high)
        return len(mark)

    def gc(self) -> int:
        """Mark-and-sweep over externally referenced roots.

        Compacts the node store, rebuilds the unique table, clears the
        computed tables, and remaps every live :class:`Bdd` handle in
        place.  Returns the number of nodes reclaimed.
        """
        with obs.span("bdd.gc") as sp:
            reclaimed = self._gc_impl()
            sp.add("reclaimed", reclaimed)
        return reclaimed

    def _gc_impl(self) -> int:
        handles = self._iter_handles()
        nodes = self._nodes
        mark: Set[int] = set()
        stack = [h.root for h in handles if h.root > TRUE]
        while stack:
            nid = stack.pop()
            if nid in mark:
                continue
            mark.add(nid)
            node = nodes[nid]
            if node.low > TRUE:
                stack.append(node.low)
            if node.high > TRUE:
                stack.append(node.high)

        reclaimed = len(nodes) - 2 - len(mark)
        if reclaimed <= 0:
            self._gc_runs += 1
            return 0

        remap = {FALSE: FALSE, TRUE: TRUE}
        new_nodes = [nodes[FALSE], nodes[TRUE]]
        for nid in sorted(mark):
            remap[nid] = len(new_nodes)
            new_nodes.append(nodes[nid])
        for nid in mark:
            node = nodes[nid]
            node.low = remap[node.low]
            node.high = remap[node.high]
        self._nodes = new_nodes
        self._unique = {
            (node.level, node.low, node.high): idx
            for idx, node in enumerate(new_nodes[2:], start=2)
        }
        self._ite_cache.clear()
        self._ae_cache.clear()
        for handle in handles:
            handle.root = remap[handle.root]
        self._gc_runs += 1
        self._gc_reclaimed += reclaimed
        return reclaimed

    # ------------------------------------------------------------------
    # Dynamic variable reordering (Rudell sifting)
    # ------------------------------------------------------------------
    def _swap_adjacent(self, pos: int) -> None:
        """Swap the variables at levels ``pos`` and ``pos + 1`` in place.

        Node ids keep their semantic function (nodes are mutated, never
        replaced), so external handles and computed-table entries remain
        valid; dead nodes created by the re-expression linger until the
        next :meth:`gc`.
        """
        nodes = self._nodes
        below = pos + 1
        xs: List[int] = []
        ys: List[int] = []
        for idx in range(2, len(nodes)):
            lvl = nodes[idx].level
            if lvl == pos:
                xs.append(idx)
            elif lvl == below:
                ys.append(idx)
        # Drop stale unique entries for both levels; everything live is
        # re-inserted below under its post-swap key.
        self._unique = {key: val for key, val in self._unique.items()
                        if key[0] != pos and key[0] != below}
        unique = self._unique

        # Snapshot cofactors of the upper (X) nodes while the lower
        # variable (Y) still sits at level pos + 1.
        moved: List[int] = []
        rebuilt: List[Tuple[int, int, int, int, int]] = []
        for idx in xs:
            node = nodes[idx]
            f0, f1 = node.low, node.high
            y0 = nodes[f0].level == below
            y1 = nodes[f1].level == below
            if not (y0 or y1):
                moved.append(idx)
                continue
            f00, f01 = (nodes[f0].low, nodes[f0].high) if y0 else (f0, f0)
            f10, f11 = (nodes[f1].low, nodes[f1].high) if y1 else (f1, f1)
            rebuilt.append((idx, f00, f01, f10, f11))

        # Y nodes rise to level pos unchanged.
        for idx in ys:
            node = nodes[idx]
            node.level = pos
            unique[(pos, node.low, node.high)] = idx
        # X nodes independent of Y sink to level pos + 1 unchanged.
        for idx in moved:
            node = nodes[idx]
            node.level = below
            unique[(below, node.low, node.high)] = idx
        # X nodes depending on Y are re-expressed with Y on top:
        #   x ? (y ? f11 : f10) : (y ? f01 : f00)
        # == y ? (x ? f11 : f01) : (x ? f10 : f00)
        for idx, f00, f01, f10, f11 in rebuilt:
            low = self._mk(below, f00, f10)
            high = self._mk(below, f01, f11)
            node = nodes[idx]
            node.low = low
            node.high = high
            unique[(pos, low, high)] = idx

        upper, lower = self._level_vars[pos], self._level_vars[below]
        self._level_vars[pos], self._level_vars[below] = lower, upper
        self._var_levels[lower] = pos
        self._var_levels[upper] = below

    def _sift_var(self, name: str, roots: Set[int],
                  max_growth: float) -> None:
        n = len(self._level_vars)
        start = self._var_levels[name]
        best_size = self._live_size(roots)
        best_pos = start
        pos = start
        # Downward pass.
        while pos < n - 1:
            self._swap_adjacent(pos)
            pos += 1
            size = self._live_size(roots)
            if size < best_size:
                best_size, best_pos = size, pos
            elif size > max_growth * best_size + 2:
                break
        # Upward pass (through the original position to the top).
        while pos > 0:
            self._swap_adjacent(pos - 1)
            pos -= 1
            size = self._live_size(roots)
            if size < best_size:
                best_size, best_pos = size, pos
            elif pos < start and size > max_growth * best_size + 2:
                break
        # Settle at the best position seen.
        while pos < best_pos:
            self._swap_adjacent(pos)
            pos += 1
        while pos > best_pos:
            self._swap_adjacent(pos - 1)
            pos -= 1

    def reorder(self, method: str = "sifting",
                max_growth: float = 1.2) -> int:
        """Dynamic variable reordering; returns nodes saved.

        ``method`` must be ``"sifting"`` (Rudell): variables are sifted
        one at a time — most populous level first — through every
        position, each settling where the live node count is smallest.
        ``max_growth`` bounds how far a sift may inflate the DAG before
        the direction is abandoned.
        """
        with obs.span("bdd.reorder", method=method) as sp:
            saved = self._reorder_impl(method, max_growth)
            sp.add("nodes_saved", saved)
        return saved

    def _reorder_impl(self, method: str, max_growth: float) -> int:
        if method not in ("sifting", "sift"):
            raise ValueError(f"unknown reorder method {method!r}")
        if len(self._level_vars) < 2:
            return 0
        self.gc()
        before = len(self._nodes)
        roots = self._external_roots()
        live = self._live_size(roots)

        occupancy: Dict[int, int] = {}
        for node in self._nodes[2:]:
            occupancy[node.level] = occupancy.get(node.level, 0) + 1
        names = sorted(
            (v for v in self._level_vars if occupancy.get(
                self._var_levels[v], 0) > 0),
            key=lambda v: -occupancy[self._var_levels[v]])

        for name in names:
            # Swaps leave dead nodes behind; compact periodically so the
            # scans stay proportional to the live size.  gc() remaps
            # ids, so refresh the root set afterwards.
            if len(self._nodes) > 4 * max(live, 256):
                self.gc()
                roots = self._external_roots()
            self._sift_var(name, roots, max_growth)
            live = self._live_size(roots)

        self._ite_cache.clear()
        self._ae_cache.clear()
        self.gc()
        self._reorders += 1
        return before - len(self._nodes)

    # ------------------------------------------------------------------
    # Automatic maintenance (safe points only)
    # ------------------------------------------------------------------
    def _maybe_auto(self) -> None:
        """Run due maintenance.  Called only from Bdd operator wrappers,
        before any raw root id is read — GC/reordering renumber nodes,
        so they must never fire inside a manager-level operation."""
        if len(self._ite_cache) > self.cache_limit:
            self._ite_cache.clear()
            self._cache_ages += 1
        if len(self._ae_cache) > self.cache_limit:
            self._ae_cache.clear()
            self._cache_ages += 1
        if len(self._nodes) >= self.auto_gc_threshold:
            if self.gc() < len(self._nodes) // 4:
                # Mostly live: postpone the next collection.
                self.auto_gc_threshold = 2 * len(self._nodes)
        if self.auto_reorder \
                and len(self._nodes) >= self.auto_reorder_threshold:
            self.reorder()
            self.auto_reorder_threshold = max(
                self.auto_reorder_threshold, 2 * len(self._nodes))

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counters for observability; all keys are flat ints so the
        dict serializes straight into bench JSON.  When the
        :mod:`repro.obs` subsystem is enabled, every counter is also
        published to the process-wide metrics registry as a
        ``bdd.<key>`` gauge."""
        stats = {
            "nodes_total": len(self._nodes),
            "nodes_live": self._live_size(self._external_roots()) + 2,
            "nodes_peak": self._peak_nodes,
            "variables": len(self._level_vars),
            "unique_hits": self._unique_hits,
            "unique_misses": self._unique_misses,
            "ite_cache_size": len(self._ite_cache),
            "ite_cache_hits": self._ite_hits,
            "ite_cache_misses": self._ite_misses,
            "and_exists_cache_size": len(self._ae_cache),
            "and_exists_cache_hits": self._ae_hits,
            "and_exists_cache_misses": self._ae_misses,
            "gc_runs": self._gc_runs,
            "gc_reclaimed": self._gc_reclaimed,
            "reorders": self._reorders,
            "cache_ages": self._cache_ages,
        }
        if obs.enabled():
            for key, value in stats.items():
                obs.gauge(f"bdd.{key}", value)
        return stats

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def from_truth_table(self, names: Sequence[str],
                         minterms: Iterable[int]) -> Bdd:
        """Build the function whose on-set is ``minterms``.

        Bit i of a minterm corresponds to ``names[i]`` (names[0] is the
        least-significant bit).
        """
        result = FALSE
        for m in minterms:
            cube = TRUE
            for i, name in enumerate(names):
                v = self._mk(self._register(name), FALSE, TRUE)
                lit = v if (m >> i) & 1 else self.apply_not(v)
                cube = self.apply_and(cube, lit)
            result = self.apply_or(result, cube)
        return Bdd(self, result)

    def _register(self, name: str) -> int:
        if name not in self._var_levels:
            self._var_levels[name] = len(self._level_vars)
            self._level_vars.append(name)
        return self._var_levels[name]

    def cube(self, assignment: Dict[str, bool]) -> Bdd:
        """Conjunction of literals given by ``assignment``."""
        result = TRUE
        for name, value in assignment.items():
            v = self.var(name).root
            lit = v if value else self.apply_not(v)
            result = self.apply_and(result, lit)
        return Bdd(self, result)
