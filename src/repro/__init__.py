"""repro: high-level power modeling, estimation, and optimization.

A from-scratch Python reproduction of the survey by Macii, Pedram, and
Somenzi (IEEE TCAD 17(11), 1998 / DAC'97 tutorial): every surveyed
estimation model and optimization technique, implemented on top of
built-in substrates (BDDs, two-level minimization, gate-level
netlists and simulators, FSM/STG machinery, an RTL component library,
CDFG scheduling/allocation, and a small ISA with an energy-annotated
simulator).

Quick start::

    from repro import PowerEstimator
    from repro.logic.generators import ripple_carry_adder
    from repro.logic.simulate import random_vectors

    adder = ripple_carry_adder(8)
    vectors = random_vectors(adder.inputs, 500, seed=0)
    estimator = PowerEstimator()
    print(estimator.gate(adder, vectors))
    print(estimator.entropic(adder, vectors))

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured experiment index.
"""

from repro.core import (
    DesignImprovementLoop,
    EstimateResult,
    OptimizationStep,
    PowerEstimator,
)

__version__ = "1.0.0"

__all__ = [
    "PowerEstimator",
    "EstimateResult",
    "DesignImprovementLoop",
    "OptimizationStep",
    "__version__",
]
