"""Command-line entry point:  python -m repro [command]

Commands:
  info          library overview: subsystems, technique coverage
  demo          run a 30-second cross-level estimation demo
  experiments   list the paper-reproduction benches and how to run them
  bench         run the benches in parallel; aggregate BENCH_ALL.json
  serve         run the estimation HTTP service over a warm worker pool
  learn         characterize / fit / evaluate learned power macromodels

``info`` and ``experiments`` accept ``--json`` for machine-readable
output; ``bench`` forwards to :mod:`repro.obs.runner` (see
``python -m repro bench --help``).
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence


def cmd_info(args: Sequence[str]) -> int:
    import repro
    from repro.experiments import SUBSYSTEMS

    if "--json" in args:
        print(json.dumps({
            "package": "repro",
            "version": repro.__version__,
            "paper": "Macii/Pedram/Somenzi, IEEE TCAD 17(11), 1998",
            "subsystems": SUBSYSTEMS,
        }, indent=2))
        return 0
    print(f"repro {repro.__version__} -- high-level power modeling, "
          "estimation, and optimization")
    print("(reproduction of Macii/Pedram/Somenzi, IEEE TCAD 17(11), "
          "1998)")
    print()
    for entry in SUBSYSTEMS:
        print(f"  {entry['module']:20s} {entry['description']}")
    print()
    print("docs: README.md, DESIGN.md (system inventory), "
          "EXPERIMENTS.md (paper vs measured)")
    return 0


def cmd_experiments(args: Sequence[str]) -> int:
    from repro.experiments import EXPERIMENTS

    if "--json" in args:
        print(json.dumps([exp.to_dict() for exp in EXPERIMENTS],
                         indent=2))
        return 0
    print("paper-reproduction benches (run all with `python -m repro "
          "bench`,")
    print("or one with `pytest benchmarks/<file> --benchmark-only -s`):")
    for exp in EXPERIMENTS:
        print(f"  {exp.id:4s} {exp.title:42s} benchmarks/{exp.bench}")
    return 0


def cmd_demo(args: Sequence[str]) -> int:
    from repro import PowerEstimator
    from repro.logic.generators import ripple_carry_adder
    from repro.logic.simulate import random_vectors

    print("demo: an 8-bit adder estimated at several levels")
    circuit = ripple_carry_adder(8)
    vectors = random_vectors(circuit.inputs, 400, seed=0)
    estimator = PowerEstimator()
    for label, result in [
        ("gate-level simulation", estimator.gate(circuit, vectors)),
        ("event-driven (glitches)",
         estimator.gate(circuit, vectors, technique="event-driven")),
        ("transition densities",
         estimator.gate(circuit, technique="probabilistic")),
        ("entropy model", estimator.entropic(circuit, vectors)),
    ]:
        print(f"  {label:26s} power = {result.power:9.3f}  "
              f"(cost {result.cost:.0f})")
    print("see examples/ for the full walkthroughs")
    return 0


def cmd_bench(args: Sequence[str]) -> int:
    from repro.obs.runner import main as bench_main

    return bench_main(list(args))


def cmd_serve(args: Sequence[str]) -> int:
    from repro.serve import main as serve_main

    return serve_main(list(args))


def cmd_learn(args: Sequence[str]) -> int:
    from repro.estimation.learned.cli import main as learn_main

    return learn_main(list(args))


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "info"
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "experiments": cmd_experiments,
        "bench": cmd_bench,
        "serve": cmd_serve,
        "learn": cmd_learn,
    }
    handler = handlers.get(command)
    if handler is None:
        print(__doc__)
        return 2
    return handler(args[1:])


if __name__ == "__main__":
    raise SystemExit(main())
