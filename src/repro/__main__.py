"""Command-line entry point:  python -m repro [command]

Commands:
  info          library overview: subsystems, technique coverage
  demo          run a 30-second cross-level estimation demo
  experiments   list the paper-reproduction benches and how to run them
"""

from __future__ import annotations

import sys

_SUBSYSTEMS = [
    ("repro.bdd", "ROBDD package (ite/quantify/compose/probability)"),
    ("repro.twolevel", "Quine-McCluskey + espresso-style minimization"),
    ("repro.logic", "gate netlists, simulators, synthesis, generators"),
    ("repro.fsm", "STGs, Markov analysis, encoding, symbolic traversal"),
    ("repro.rtl", "word streams, characterized components, RTL sim"),
    ("repro.cdfg", "dataflow graphs, scheduling, datapath synthesis"),
    ("repro.software", "energy-annotated ISA simulator"),
    ("repro.estimation", "Section II: all surveyed estimation models"),
    ("repro.optimization", "Section III: all surveyed optimizations"),
    ("repro.core", "PowerEstimator facade + design-improvement loop"),
]

_EXPERIMENTS = [
    ("T1", "Table I FIR capacitance", "bench_table1_fir.py"),
    ("F2", "memory-access minimization", "bench_fig2_memory.py"),
    ("F3", "static shutdown timeout", "bench_fig3_shutdown.py"),
    ("F45", "polynomial restructuring", "bench_fig45_polynomial.py"),
    ("F6", "precomputation", "bench_fig6_precompute.py"),
    ("F7", "gated clocks", "bench_fig7_gated_clock.py"),
    ("F8", "guarded evaluation", "bench_fig8_guarded.py"),
    ("F9", "retiming", "bench_fig9_retiming.py"),
    ("C1", "profile-driven program synthesis",
     "bench_c1_profile_synthesis.py"),
    ("C2", "entropic models", "bench_c2_entropy.py"),
    ("C3", "Tyagi FSM bound", "bench_c3_tyagi.py"),
    ("C4", "complexity models", "bench_c4_complexity.py"),
    ("C5", "macro-model ladder", "bench_c5_macromodel.py"),
    ("C6", "sampling cosimulation", "bench_c6_sampling.py"),
    ("C7", "predictive shutdown", "bench_c7_predictive.py"),
    ("C8", "activity-aware allocation", "bench_c8_allocation.py"),
    ("C9", "multiple supply voltages", "bench_c9_multivoltage.py"),
    ("C10", "bus encoding", "bench_c10_bus_encoding.py"),
    ("C11", "low-power state encoding", "bench_c11_fsm_encoding.py"),
    ("C12", "low-power scheduling", "bench_c12_scheduling.py"),
    ("C13", "cold scheduling", "bench_c13_cold_scheduling.py"),
]


def cmd_info() -> None:
    import repro

    print(f"repro {repro.__version__} -- high-level power modeling, "
          "estimation, and optimization")
    print("(reproduction of Macii/Pedram/Somenzi, IEEE TCAD 17(11), "
          "1998)")
    print()
    for module, description in _SUBSYSTEMS:
        print(f"  {module:20s} {description}")
    print()
    print("docs: README.md, DESIGN.md (system inventory), "
          "EXPERIMENTS.md (paper vs measured)")


def cmd_experiments() -> None:
    print("paper-reproduction benches (run with "
          "`pytest benchmarks/<file> --benchmark-only -s`):")
    for exp_id, title, bench in _EXPERIMENTS:
        print(f"  {exp_id:4s} {title:36s} benchmarks/{bench}")


def cmd_demo() -> None:
    from repro import PowerEstimator
    from repro.logic.generators import ripple_carry_adder
    from repro.logic.simulate import random_vectors

    print("demo: an 8-bit adder estimated at several levels")
    circuit = ripple_carry_adder(8)
    vectors = random_vectors(circuit.inputs, 400, seed=0)
    estimator = PowerEstimator()
    for label, result in [
        ("gate-level simulation", estimator.gate(circuit, vectors)),
        ("event-driven (glitches)",
         estimator.gate(circuit, vectors, technique="event-driven")),
        ("transition densities",
         estimator.gate(circuit, technique="probabilistic")),
        ("entropy model", estimator.entropic(circuit, vectors)),
    ]:
        print(f"  {label:26s} power = {result.power:9.3f}  "
              f"(cost {result.cost:.0f})")
    print("see examples/ for the full walkthroughs")


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "info"
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "experiments": cmd_experiments,
    }
    handler = handlers.get(command)
    if handler is None:
        print(__doc__)
        return 2
    handler()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
