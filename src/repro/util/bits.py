"""Shared popcount / Hamming primitives.

Every word-level cost function in the codebase — bus transition
counts, register/FU allocation switching matrices, FSM encoding
objectives, instruction-bus toggles — bottoms out in "how many bits
differ between these two integers".  This module is the single home
for that primitive so the hot paths all use ``int.bit_count()`` (a
C-level population count, Python >= 3.10) instead of the
``bin(x).count("1")`` string round-trip, with the string fallback kept
for 3.9 interpreters.
"""

from __future__ import annotations

__all__ = ["popcount", "hamming"]

if hasattr(int, "bit_count"):          # Python >= 3.10
    def popcount(x: int) -> int:
        """Number of set bits in a non-negative integer."""
        return x.bit_count()
else:                                  # pragma: no cover - 3.9 fallback
    def popcount(x: int) -> int:
        """Number of set bits in a non-negative integer."""
        return bin(x).count("1")


def hamming(a: int, b: int) -> int:
    """Hamming distance between two non-negative integers."""
    return popcount(a ^ b)
