"""Shared popcount / Hamming primitives.

Every word-level cost function in the codebase — bus transition
counts, register/FU allocation switching matrices, FSM encoding
objectives, instruction-bus toggles — bottoms out in "how many bits
differ between these two integers".  This module is the single home
for that primitive so the hot paths all use ``int.bit_count()`` (a
C-level population count, Python >= 3.10) instead of the
``bin(x).count("1")`` string round-trip, with the string fallback kept
for 3.9 interpreters.
"""

from __future__ import annotations

__all__ = ["popcount", "hamming", "MAX_UINT64_CODE_BITS"]

#: Widest code that is safe to hold in a ``numpy.uint64`` lane and
#: still xor against another such code without overflow ambiguity
#: (bit 63 is reserved so ``int(np.uint64)`` round-trips stay exact
#: on every platform).  Vectorized cost paths over state/bus codes
#: (FSM encoding, Markov switching objectives) fall back to their
#: scalar references above this width; one-hot encodings cross it at
#: 64 states.
MAX_UINT64_CODE_BITS = 63

if hasattr(int, "bit_count"):          # Python >= 3.10
    def popcount(x: int) -> int:
        """Number of set bits in a non-negative integer."""
        return x.bit_count()
else:                                  # pragma: no cover - 3.9 fallback
    def popcount(x: int) -> int:
        """Number of set bits in a non-negative integer."""
        return bin(x).count("1")


def hamming(a: int, b: int) -> int:
    """Hamming distance between two non-negative integers."""
    return popcount(a ^ b)
