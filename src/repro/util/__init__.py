"""repro.util — small shared primitives used across subsystems."""

from repro.util.bits import hamming, popcount

__all__ = ["popcount", "hamming"]
