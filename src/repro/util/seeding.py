"""One spawn-key scheme for every worker pool.

Three subsystems fan work out over process pools and need per-child
seeds that are (a) deterministic, (b) distinct per child, and (c)
stable across worker counts and completion order: the sharded timed
engine / estimation-service shards (:mod:`repro.serve`), the learned
characterization stimulus mix
(:mod:`repro.estimation.learned.characterize`), and the parallel
candidate-search executor (:mod:`repro.optimization.search`).  Each
used to derive child seeds its own way; this module is the single
shared derivation.

The scheme is the affine spawn key the characterization flow has
always used::

    child = (base * STRIDE + index) & MASK

``STRIDE`` is fixed forever — committed characterization datasets
record their per-run seeds and must stay reproducible — and ``MASK``
keeps seeds in the non-negative 31-bit range every stdlib and numpy
RNG accepts.  Chaining is well-defined: a child seed is itself a
valid base (``child_seed(child_seed(s, i), j)`` gives grandchildren),
which is how nested fan-outs (service shards inside a batch, restarts
inside a search) stay collision-resistant without coordination.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["STRIDE", "MASK", "child_seed", "spawn_seeds"]

#: Spawn-key multiplier (any odd constant; fixed forever so committed
#: datasets that recorded derived seeds stay reproducible).
STRIDE = 1000003

#: Derived seeds live in [0, 2**31): the range every consumer RNG
#: (random.Random, numpy) accepts as-is.
MASK = 0x7FFFFFFF


def child_seed(base: Optional[int], index: int) -> Optional[int]:
    """The ``index``-th child seed of ``base`` (None passes through).

    ``None`` means "unseeded" everywhere in the repo (fresh entropy
    per run); deriving children from it stays ``None`` so unseeded
    parents get unseeded children rather than accidentally-fixed ones.
    """
    if base is None:
        return None
    if index < 0:
        raise ValueError(f"child index must be >= 0, got {index}")
    return (int(base) * STRIDE + index) & MASK


def spawn_seeds(base: Optional[int], n: int) -> List[Optional[int]]:
    """Child seeds 0..n-1 of ``base``, in index order."""
    return [child_seed(base, k) for k in range(n)]
