"""Parallel experiment orchestrator behind ``python -m repro bench``.

Discovers every ``benchmarks/bench_*.py`` target, fans the sweep out
over a worker pool, and aggregates per-bench results plus harvested
telemetry into one ``BENCH_ALL.json`` at the repo root.  Design
points, in the order they bit previous hand-rolled harnesses:

- **Isolation.**  Each bench runs in its own subprocess (pytest on a
  single file).  A bench that corrupts interpreter state, leaks
  memory, or hangs cannot take the sweep down with it.
- **Timeouts that actually kill.**  The pool is a
  :class:`multiprocessing.pool.ThreadPool` whose workers *drive*
  subprocesses; ``subprocess.run(timeout=...)`` kills the child
  process group on expiry.  (An in-process ``multiprocessing.Pool``
  cannot forcibly stop a stuck worker without burning the pool.)
- **Graceful degradation.**  A failing or hanging bench is recorded
  as ``{"status": "failed"|"timeout", ...}`` with the output tail —
  never an aborted sweep.  Every failure gets exactly one retry
  (perf flakes on loaded CI boxes are the common case).
- **Telemetry.**  Workers run with ``REPRO_OBS_EXPORT`` pointing at a
  scratch file; :mod:`repro.obs` in the child writes its span trees
  and metrics at exit, and the orchestrator folds a digest into the
  bench's entry.
- **Regression gate.**  The perf benches maintain committed baselines
  (``BENCH_fastsim.json``, ``BENCH_bdd.json``).  The orchestrator
  snapshots them before the sweep and flags entries whose measured
  speedup fell below ``tolerance`` of baseline.  Timing on shared
  runners is noisy, so the gate compares *ratios*, not absolute
  seconds, and only ``--gate`` failures affect the exit code.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from multiprocessing.pool import ThreadPool
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.backend.core import ENGINES
from repro.obs.manifest import run_manifest

__all__ = ["discover_benches", "run_bench", "run_sweep",
           "gate_regressions", "main", "SMOKE_BENCHES"]

#: Quick, deterministic subset exercised by ``--smoke`` (CI) runs:
#: one estimation bench, one optimization bench, and the perf
#: benches (the regression-gate inputs).
SMOKE_BENCHES = [
    "bench_c2_entropy.py",
    "bench_fig3_shutdown.py",
    "bench_perf_fastsim.py",
    "bench_perf_bdd.py",
    "bench_perf_eventsim.py",
    "bench_perf_streams.py",
    "bench_perf_backends.py",
    "bench_perf_serve.py",
    "bench_perf_learned.py",
    "bench_perf_incremental.py",
    "bench_perf_search.py",
]

#: Perf-baseline files at the repo root and the result keys gated in
#: each: entries carry a ``speedup`` field compared against baseline.
BASELINE_FILES = ["BENCH_fastsim.json", "BENCH_bdd.json",
                  "BENCH_eventsim.json", "BENCH_streams.json",
                  "BENCH_backends.json", "BENCH_serve.json",
                  "BENCH_learned.json", "BENCH_incremental.json",
                  "BENCH_search.json"]


def default_repo_root() -> Path:
    """Repo root: prefer cwd (or a parent) containing ``benchmarks/``,
    else fall back to the source checkout this module lives in."""
    probe = Path.cwd()
    for candidate in (probe, *probe.parents):
        if (candidate / "benchmarks").is_dir():
            return candidate
    return Path(__file__).resolve().parents[3]


def discover_benches(bench_dir: Path) -> List[Path]:
    """All ``bench_*.py`` files in ``bench_dir``, sorted by name."""
    return sorted(bench_dir.glob("bench_*.py"))


# ----------------------------------------------------------------------
# Single-bench execution
# ----------------------------------------------------------------------
def _child_env(bench_dir: Path, telemetry_path: Path,
               trace: bool, backend: Optional[str] = None,
               store_dir: Optional[Path] = None,
               search_workers: Optional[str] = None,
               cone_cache_bytes: Optional[int] = None
               ) -> Dict[str, str]:
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH", "")) if p)
    if trace:
        env["REPRO_OBS"] = "1"
        env["REPRO_OBS_EXPORT"] = str(telemetry_path)
    else:
        env.pop("REPRO_OBS", None)
        env.pop("REPRO_OBS_EXPORT", None)
    if backend is not None:
        env["REPRO_ENGINE"] = backend
    if store_dir is not None:
        env["REPRO_STORE"] = str(store_dir)
    if search_workers is not None:
        env["REPRO_SEARCH_WORKERS"] = str(search_workers)
    if cone_cache_bytes is not None:
        env["REPRO_CONE_CACHE_BYTES"] = str(cone_cache_bytes)
    return env


def _telemetry_digest(path: Path) -> Optional[Dict[str, Any]]:
    """Compact summary of a worker's telemetry export (if it wrote one)."""
    if not path.exists():
        return None
    try:
        state = json.loads(path.read_text())
    except ValueError:
        return None
    spans = state.get("spans", [])

    def count(nodes: List[Dict[str, Any]]) -> int:
        return sum(1 + count(n.get("children", [])) for n in nodes)

    metrics = state.get("metrics", {})
    return {
        "span_roots": sorted({s.get("name", "?") for s in spans}),
        "span_count": count(spans),
        "counters": metrics.get("counters", {}),
        "gauges": metrics.get("gauges", {}),
    }


def run_bench(bench: Path, timeout: float, trace: bool = True,
              retries: int = 1,
              backend: Optional[str] = None,
              store_dir: Optional[Path] = None,
              search_workers: Optional[str] = None,
              cone_cache_bytes: Optional[int] = None) -> Dict[str, Any]:
    """Run one bench file under pytest in a subprocess.

    Returns the BENCH_ALL entry: status in {ok, failed, timeout},
    duration, attempt count, and (on failure) the output tail.  Never
    raises — an un-runnable bench is a *result*, not an error.
    ``backend`` exports ``REPRO_ENGINE`` to the worker so the bench's
    default-engine call sites run on that engine; ``store_dir``
    exports ``REPRO_STORE`` so all benches share one plan store (a
    structure compiled by any bench rehydrates in every other).
    ``search_workers`` and ``cone_cache_bytes`` export
    ``REPRO_SEARCH_WORKERS`` / ``REPRO_CONE_CACHE_BYTES`` so the
    candidate-search pool width and cone-cache budget are sweep
    configuration, recorded in BENCH_ALL alongside backend/store.
    """
    attempts = 0
    entry: Dict[str, Any] = {"bench": bench.name}
    while True:
        attempts += 1
        with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
            telemetry_path = Path(tmp) / "telemetry.json"
            cmd = [sys.executable, "-m", "pytest", bench.name,
                   "-q", "-s", "-p", "no:cacheprovider"]
            start = time.perf_counter()
            try:
                proc = subprocess.run(
                    cmd, cwd=str(bench.parent), timeout=timeout,
                    env=_child_env(bench.parent, telemetry_path, trace,
                                   backend, store_dir, search_workers,
                                   cone_cache_bytes),
                    stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                    text=True)
                duration = time.perf_counter() - start
                status = "ok" if proc.returncode == 0 else "failed"
                returncode: Optional[int] = proc.returncode
                output = proc.stdout or ""
            except subprocess.TimeoutExpired as exc:
                duration = time.perf_counter() - start
                status = "timeout"
                returncode = None
                raw = exc.stdout or b""
                output = raw.decode("utf-8", "replace") \
                    if isinstance(raw, bytes) else raw
            except OSError as exc:   # pragma: no cover - broken env only
                duration = time.perf_counter() - start
                status = "failed"
                returncode = None
                output = repr(exc)
            entry.update({
                "status": status,
                "duration_s": round(duration, 3),
                "attempts": attempts,
                "returncode": returncode,
            })
            digest = _telemetry_digest(telemetry_path)
            if digest is not None:
                entry["telemetry"] = digest
        if status == "ok" or attempts > retries:
            if status != "ok":
                tail = output.strip().splitlines()[-12:]
                entry["output_tail"] = tail
            return entry
        # else: retry once more


# ----------------------------------------------------------------------
# Sweep + aggregation
# ----------------------------------------------------------------------
def _load_json(path: Path) -> Dict[str, Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return {}


def snapshot_baselines(root: Path) -> Dict[str, Dict[str, Any]]:
    """The committed perf baselines, keyed by file name."""
    return {name: _load_json(root / name) for name in BASELINE_FILES}


def gate_regressions(baselines: Dict[str, Dict[str, Any]],
                     root: Path, tolerance: float = 0.5
                     ) -> List[Dict[str, Any]]:
    """Compare refreshed perf results against the pre-sweep baselines.

    An entry regresses when its measured ``speedup`` fell below
    ``tolerance`` times the baseline speedup (ratio-based: robust to
    machine-to-machine absolute-time differences).
    """
    regressions: List[Dict[str, Any]] = []
    for name, baseline in baselines.items():
        current = _load_json(root / name)
        for key, base_entry in baseline.items():
            base_speedup = base_entry.get("speedup")
            cur_entry = current.get(key)
            if base_speedup is None or not cur_entry:
                continue
            cur_speedup = cur_entry.get("speedup")
            if cur_speedup is None:
                continue
            if cur_speedup < tolerance * base_speedup:
                regressions.append({
                    "file": name,
                    "key": key,
                    "baseline_speedup": base_speedup,
                    "measured_speedup": cur_speedup,
                    "tolerance": tolerance,
                })
    return regressions


def run_sweep(benches: Sequence[Path], jobs: int, timeout: float,
              trace: bool = True, retries: int = 1,
              progress=None, backend: Optional[str] = None,
              store_dir: Optional[Path] = None,
              search_workers: Optional[str] = None,
              cone_cache_bytes: Optional[int] = None
              ) -> Dict[str, Dict[str, Any]]:
    """Fan the benches out over a worker pool; collect every result."""
    results: Dict[str, Dict[str, Any]] = {}
    if not benches:
        return results

    def work(bench: Path) -> Dict[str, Any]:
        entry = run_bench(bench, timeout=timeout, trace=trace,
                          retries=retries, backend=backend,
                          store_dir=store_dir,
                          search_workers=search_workers,
                          cone_cache_bytes=cone_cache_bytes)
        if progress is not None:
            progress(entry)
        return entry

    if jobs <= 1 or len(benches) == 1:
        entries = [work(b) for b in benches]
    else:
        with ThreadPool(processes=min(jobs, len(benches))) as pool:
            entries = pool.map(work, benches)
    for entry in entries:
        results[entry["bench"]] = {k: v for k, v in entry.items()
                                   if k != "bench"}
    return results


def write_bench_all(root: Path, results: Dict[str, Dict[str, Any]],
                    config: Dict[str, Any],
                    regressions: List[Dict[str, Any]],
                    out: Optional[Path] = None) -> Path:
    statuses = [entry["status"] for entry in results.values()]
    report = {
        "schema": "repro.bench/1",
        "manifest": run_manifest(extra={"command": "repro bench"}),
        "config": config,
        "benches": results,
        "regressions": regressions,
        "summary": {
            "total": len(statuses),
            "ok": statuses.count("ok"),
            "failed": statuses.count("failed"),
            "timeout": statuses.count("timeout"),
        },
    }
    path = out if out is not None else root / "BENCH_ALL.json"
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the experiment benches in parallel and "
                    "aggregate results + telemetry into BENCH_ALL.json.")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI subset with short timeouts")
    parser.add_argument("--filter", metavar="SUBSTR", default=None,
                        help="only benches whose file name contains this")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker pool size (default: cpu count)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-bench timeout in seconds "
                             "(default: 300, smoke: 120)")
    parser.add_argument("--bench-dir", type=Path, default=None,
                        help="directory holding bench_*.py "
                             "(default: <repo>/benchmarks)")
    parser.add_argument("--out", type=Path, default=None,
                        help="aggregate report path "
                             "(default: <repo>/BENCH_ALL.json)")
    parser.add_argument("--no-trace", action="store_true",
                        help="do not enable repro.obs telemetry in "
                             "bench workers")
    parser.add_argument("--backend", choices=list(ENGINES), default=None,
                        help="run bench workers with this default "
                             "engine (exports REPRO_ENGINE)")
    parser.add_argument("--store", metavar="DIR", type=Path,
                        default=None,
                        help="shared plan-store directory exported to "
                             "bench workers as REPRO_STORE (default: "
                             "a sweep-lifetime temp dir)")
    parser.add_argument("--no-store", action="store_true",
                        help="run bench workers without a shared "
                             "plan store")
    parser.add_argument("--search-workers", metavar="N", default=None,
                        help="candidate-search pool width exported to "
                             "bench workers as REPRO_SEARCH_WORKERS "
                             "(an integer or 'auto')")
    parser.add_argument("--cone-cache-bytes", metavar="BYTES",
                        type=int, default=None,
                        help="cone-cache budget exported to bench "
                             "workers as REPRO_CONE_CACHE_BYTES")
    parser.add_argument("--no-gate", action="store_true",
                        help="report perf regressions but never fail "
                             "the exit code on them")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="regression gate: measured speedup must "
                             "stay above this fraction of baseline "
                             "(default 0.5)")
    parser.add_argument("--json", action="store_true",
                        help="print the aggregate report as JSON")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.bench_dir is not None:
        bench_dir = args.bench_dir
        root = bench_dir.parent
    else:
        root = default_repo_root()
        bench_dir = root / "benchmarks"
    if not bench_dir.is_dir():
        print(f"bench: no such bench directory: {bench_dir}",
              file=sys.stderr)
        return 2

    benches = discover_benches(bench_dir)
    if args.smoke:
        smoke = set(SMOKE_BENCHES)
        benches = [b for b in benches if b.name in smoke]
    if args.filter:
        benches = [b for b in benches if args.filter in b.name]
    if not benches:
        print("bench: no benches matched", file=sys.stderr)
        return 2

    timeout = args.timeout if args.timeout is not None \
        else (120.0 if args.smoke else 300.0)
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)

    baselines = snapshot_baselines(root)
    started = time.perf_counter()
    if not args.json:
        print(f"bench: {len(benches)} benches, {jobs} workers, "
              f"{timeout:.0f}s timeout"
              + (", smoke subset" if args.smoke else ""))

    def progress(entry: Dict[str, Any]) -> None:
        if not args.json:
            print(f"  {entry['status']:7s} {entry['bench']:34s} "
                  f"{entry['duration_s']:7.1f}s"
                  + (f"  (attempt {entry['attempts']})"
                     if entry["attempts"] > 1 else ""))

    store_tmp: Optional[tempfile.TemporaryDirectory] = None
    if args.no_store:
        store_dir: Optional[Path] = None
    elif args.store is not None:
        store_dir = args.store
        store_dir.mkdir(parents=True, exist_ok=True)
    else:
        store_tmp = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        store_dir = Path(store_tmp.name)

    try:
        results = run_sweep(benches, jobs=jobs, timeout=timeout,
                            trace=not args.no_trace, progress=progress,
                            backend=args.backend, store_dir=store_dir,
                            search_workers=args.search_workers,
                            cone_cache_bytes=args.cone_cache_bytes)
    finally:
        if store_tmp is not None:
            store_tmp.cleanup()
    regressions = gate_regressions(baselines, root,
                                   tolerance=args.tolerance)
    config = {
        "smoke": args.smoke,
        "filter": args.filter,
        "jobs": jobs,
        "timeout_s": timeout,
        "trace": not args.no_trace,
        "backend": args.backend,
        "store": str(store_dir) if store_dir else None,
        "search_workers": args.search_workers,
        "cone_cache_bytes": args.cone_cache_bytes,
        "tolerance": args.tolerance,
        "bench_dir": str(bench_dir),
        "wall_s": round(time.perf_counter() - started, 3),
    }
    out_path = write_bench_all(root, results, config, regressions,
                               out=args.out)

    summary_ok = sum(1 for e in results.values() if e["status"] == "ok")
    if args.json:
        print(json.dumps(json.loads(out_path.read_text()), indent=2,
                         sort_keys=True))
    else:
        print(f"bench: {summary_ok}/{len(results)} ok -> {out_path}")
        for reg in regressions:
            print(f"  REGRESSION {reg['file']}:{reg['key']} "
                  f"speedup {reg['measured_speedup']} < "
                  f"{reg['tolerance']} x baseline "
                  f"{reg['baseline_speedup']}")
    if summary_ok < len(results):
        return 1
    if regressions and not args.no_gate:
        return 1
    return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
