"""Tracing core: nested wall-time spans with counters and attributes.

The design target is the instrumentation layer of a measurement-driven
power flow (HL-Pow-style feature collection): every engine opens spans
around its phases, attaches whatever counters describe the work done
(vectors simulated, events processed, BDD nodes touched), and the
orchestrator harvests the tree afterwards.

Principles:

- **Zero overhead when disabled.**  ``span(...)`` returns a shared
  no-op singleton unless tracing was explicitly enabled, so the cost
  in production paths is one module-global check per *phase* (never
  per vector/event/node — hot loops count locally and attach totals
  once at the end).
- **Nesting via a per-thread stack.**  ``with span("outer"):`` then
  ``with span("inner"):`` produces a tree; each thread builds its own
  tree so no lock is taken while a span is open.
- **Thread-safe registry.**  Only *finished root* spans touch the
  global registry, under a lock; readers get snapshots.
- **Exception safe.**  A span closed by an exception still records
  its duration, marks ``error`` with the exception repr, and
  propagates the exception unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span", "NULL_SPAN", "span", "enable", "disable", "enabled",
    "reset", "finished_spans", "span_tree_names",
]


class Span:
    """One timed region.  Use as a context manager.

    ``set(key, value)`` attaches an attribute, ``add(name, value)``
    bumps a per-span counter.  Children are spans opened (on the same
    thread) while this one is active.
    """

    __slots__ = ("name", "attributes", "counters", "children",
                 "start", "duration", "_t0")

    def __init__(self, name: str,
                 attributes: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.start = 0.0
        self.duration = 0.0
        self._t0 = 0.0

    # -- instrumentation API ------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    # -- context manager ----------------------------------------------
    def __enter__(self) -> "Span":
        stack = _stack()
        stack.append(self)
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attributes["error"] = repr(exc)
        stack = _stack()
        # Pop *this* span even if the stack was tampered with.
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:            # pragma: no cover - defensive
            stack.remove(self)
        if stack:
            stack[-1].children.append(self)
        else:
            with _LOCK:
                _FINISHED.append(self)
        return False                   # never swallow exceptions

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration_s": self.duration,
        }
        if self.attributes:
            d["attributes"] = dict(self.attributes)
        if self.counters:
            d["counters"] = dict(self.counters)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def __repr__(self) -> str:   # pragma: no cover - debug aid
        return (f"Span({self.name!r}, {self.duration * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class _NullSpan:
    """Do-nothing stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, name: str, value: float = 1) -> None:
        pass


NULL_SPAN = _NullSpan()

_LOCK = threading.Lock()
_FINISHED: List[Span] = []
_TLS = threading.local()
_ENABLED = False


def _stack() -> List[Span]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    return stack


def span(name: str, **attributes: Any):
    """Open a span (context manager); no-op singleton when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return Span(name, attributes)


def enable() -> None:
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    return _ENABLED


def reset() -> None:
    """Drop all finished spans (open spans on other threads survive)."""
    with _LOCK:
        _FINISHED.clear()
    _TLS.stack = []


def finished_spans() -> List[Span]:
    """Snapshot of the finished root spans, oldest first."""
    with _LOCK:
        return list(_FINISHED)


def span_tree_names(roots: Optional[List[Span]] = None) -> List[str]:
    """Flat dotted names of every span in the registry (test helper)."""
    names: List[str] = []

    def walk(s: Span, prefix: str) -> None:
        path = f"{prefix}.{s.name}" if prefix else s.name
        names.append(path)
        for child in s.children:
            walk(child, path)

    for root in (finished_spans() if roots is None else roots):
        walk(root, "")
    return names
