"""repro.obs — observability and experiment orchestration.

The cross-cutting measurement layer of the framework.  Three parts:

- **tracing** (:mod:`repro.obs.trace`): nested wall-time spans with
  per-span counters/attributes, a no-op singleton when disabled;
- **metrics** (:mod:`repro.obs.metrics`): process-wide counters,
  gauges and timing histograms;
- **orchestration** (:mod:`repro.obs.runner`): the parallel bench
  sweep behind ``python -m repro bench`` that aggregates results and
  telemetry into ``BENCH_ALL.json`` and gates perf regressions.

Typical instrumentation::

    from repro import obs

    with obs.span("fastsim.collect_activity", gates=n_gates) as sp:
        ...
        sp.add("vectors", n)

Everything is off by default and costs one global check per phase.
Switch on programmatically (``obs.enable()``) or from the environment:
``REPRO_OBS=1`` enables tracing at import, ``REPRO_OBS_EXPORT=path``
additionally writes the full telemetry export (manifest + metrics +
span trees) to ``path`` at interpreter exit — which is how the bench
orchestrator harvests telemetry from its worker processes.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.manifest import (
    add_run_record,
    clear_run_records,
    run_manifest,
    run_records,
)
from repro.obs.metrics import Histogram, MetricsRegistry, registry
from repro.obs.trace import NULL_SPAN, Span, span

#: Version tag of the telemetry export schema.
SCHEMA = "repro.obs/1"

__all__ = [
    "span", "Span", "NULL_SPAN",
    "enable", "disable", "enabled", "reset",
    "inc", "gauge", "observe",
    "registry", "MetricsRegistry", "Histogram",
    "run_manifest", "add_run_record", "run_records",
    "clear_run_records",
    "export_state", "write_export", "load_export",
    "flush", "start_periodic_export", "stop_periodic_export",
    "PeriodicExporter",
    "SCHEMA",
]

# Re-exported switches -------------------------------------------------
enable = _trace.enable
disable = _trace.disable
enabled = _trace.enabled

inc = _metrics.inc
gauge = _metrics.gauge
observe = _metrics.observe


def reset() -> None:
    """Clear all collected spans and metrics (keeps the on/off state)."""
    _trace.reset()
    registry.reset()


def finished_spans():
    """Finished root spans, oldest first."""
    return _trace.finished_spans()


def span_names():
    """Flat dotted names of all finished spans (handy in tests)."""
    return _trace.span_tree_names()


# ----------------------------------------------------------------------
# Export / import
# ----------------------------------------------------------------------
def export_state(seed: Optional[int] = None,
                 extra_manifest: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """The full telemetry export: manifest + metrics + span trees."""
    return {
        "schema": SCHEMA,
        "manifest": run_manifest(seed=seed, extra=extra_manifest),
        "metrics": registry.snapshot(),
        "spans": [s.to_dict() for s in _trace.finished_spans()],
    }


def write_export(path: str, seed: Optional[int] = None) -> Dict[str, Any]:
    """Serialize :func:`export_state` to ``path``; returns the dict."""
    state = export_state(seed=seed)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(state, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return state


def load_export(path: str) -> Dict[str, Any]:
    """Load and validate a telemetry export written by ``write_export``."""
    with open(path) as fh:
        state = json.load(fh)
    if not isinstance(state, dict) or state.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA} telemetry export "
            f"(schema={state.get('schema') if isinstance(state, dict) else None!r})")
    for key in ("manifest", "metrics", "spans"):
        if key not in state:
            raise ValueError(f"{path}: export missing {key!r}")
    return state


# ----------------------------------------------------------------------
# Explicit / periodic export (long-running processes)
# ----------------------------------------------------------------------
def flush(path: Optional[str] = None,
          seed: Optional[int] = None) -> Optional[Dict[str, Any]]:
    """Write the telemetry export *now*, without waiting for exit.

    Long-running processes (the estimation server, notebook
    sessions) cannot rely on the historical atexit-only export.
    ``path`` defaults to ``REPRO_OBS_EXPORT``; with neither set this
    is a no-op returning ``None``, so instrumented code can call it
    unconditionally.  Returns the exported state on success.
    """
    target = path or os.environ.get("REPRO_OBS_EXPORT")
    if not target:
        return None
    return write_export(target, seed=seed)


class PeriodicExporter:
    """Background thread flushing the telemetry export on an interval.

    Daemonic — it never blocks interpreter exit — and exception-safe:
    a failed write (full disk, vanished directory) is swallowed and
    retried at the next tick, the same contract as the atexit hook.
    """

    def __init__(self, interval_s: float, path: str) -> None:
        self.interval_s = max(0.05, float(interval_s))
        self.path = path
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-export", daemon=True)

    def start(self) -> "PeriodicExporter":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                flush(self.path)
            except Exception:
                pass

    def stop(self, final_flush: bool = True) -> None:
        """Stop the exporter; by default write one last export."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        if final_flush:
            try:
                flush(self.path)
            except Exception:
                pass


_periodic_exporter: Optional[PeriodicExporter] = None


def start_periodic_export(interval_s: float,
                          path: Optional[str] = None
                          ) -> Optional[PeriodicExporter]:
    """Start (or restart) the process-wide periodic telemetry export.

    ``path`` defaults to ``REPRO_OBS_EXPORT``; returns ``None`` (and
    starts nothing) when no target path is resolvable.  Also enables
    tracing — an exporter with nothing to export is never what the
    caller meant.
    """
    global _periodic_exporter
    target = path or os.environ.get("REPRO_OBS_EXPORT")
    if not target:
        return None
    stop_periodic_export(final_flush=False)
    enable()
    _periodic_exporter = PeriodicExporter(interval_s, target).start()
    return _periodic_exporter


def stop_periodic_export(final_flush: bool = True) -> None:
    """Stop the process-wide periodic export if one is running."""
    global _periodic_exporter
    if _periodic_exporter is not None:
        _periodic_exporter.stop(final_flush=final_flush)
        _periodic_exporter = None


# ----------------------------------------------------------------------
# Environment activation (how bench workers report back)
# ----------------------------------------------------------------------
def _activate_from_env() -> None:
    if os.environ.get("REPRO_OBS", "") not in ("", "0"):
        enable()
    export_path = os.environ.get("REPRO_OBS_EXPORT")
    if export_path:
        enable()
        import atexit

        atexit.register(_export_at_exit, export_path)


def _export_at_exit(path: str) -> None:   # pragma: no cover - atexit
    try:
        write_export(path)
    except Exception:
        pass                # never turn a passing bench into a failure


_activate_from_env()
