"""Per-run manifest: what produced these numbers.

Every exported telemetry file and every ``BENCH_ALL.json`` carries a
manifest so results stay interpretable after the fact — the paper's
tables are only meaningful next to the machine and configuration that
measured them.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Any, Dict, Optional

__all__ = ["run_manifest"]


def run_manifest(seed: Optional[int] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Describe this run: package version, platform, seed, timestamp."""
    try:
        import repro
        version = repro.__version__
    except Exception:            # pragma: no cover - broken install only
        version = "unknown"
    manifest: Dict[str, Any] = {
        "package": "repro",
        "version": version,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
        "timestamp": time.time(),
        "seed": seed,
    }
    if extra:
        manifest.update(extra)
    return manifest
