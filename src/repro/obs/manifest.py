"""Per-run manifest: what produced these numbers.

Every exported telemetry file and every ``BENCH_ALL.json`` carries a
manifest so results stay interpretable after the fact — the paper's
tables are only meaningful next to the machine and configuration that
measured them.
"""

from __future__ import annotations

import os
import platform
import sys
import threading
import time
from typing import Any, Dict, Optional

__all__ = ["run_manifest", "add_run_record", "run_records",
           "clear_run_records"]

#: Process-wide provenance records merged into every manifest.
#: Characterization sweeps (:mod:`repro.estimation.learned`) register
#: their seeds and circuit fingerprints here so any telemetry export
#: or BENCH_ALL.json produced later in the process says exactly which
#: stimuli trained which models — the reproducibility contract for
#: learned results.
_run_records: Dict[str, list] = {}
_records_lock = threading.Lock()


def add_run_record(key: str, record: Dict[str, Any]) -> None:
    """Append a provenance record under ``key`` (e.g. seeds used)."""
    with _records_lock:
        _run_records.setdefault(key, []).append(record)


def run_records() -> Dict[str, list]:
    """Snapshot of the accumulated provenance records."""
    with _records_lock:
        return {k: list(v) for k, v in _run_records.items()}


def clear_run_records() -> None:
    with _records_lock:
        _run_records.clear()


def run_manifest(seed: Optional[int] = None,
                 extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Describe this run: package version, platform, seed, timestamp."""
    try:
        import repro
        version = repro.__version__
    except Exception:            # pragma: no cover - broken install only
        version = "unknown"
    manifest: Dict[str, Any] = {
        "package": "repro",
        "version": version,
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
        "timestamp": time.time(),
        "seed": seed,
    }
    records = run_records()
    if records:
        manifest["records"] = records
    if extra:
        manifest.update(extra)
    return manifest
