"""Metrics layer: counters, gauges, and timing histograms.

A single process-wide :class:`MetricsRegistry` collects named
measurements from the instrumented engines:

- **counters** accumulate (events processed, vectors simulated),
- **gauges** hold the latest value (live BDD nodes, cache hit rate),
- **histograms** record distributions of timings (or any positive
  quantity) in base-2 buckets plus exact count/total/min/max.

All mutators are no-ops while the subsystem is disabled (same switch
as :mod:`repro.obs.trace`), and thread-safe when enabled.  Hot loops
should *not* call ``inc`` per iteration — count locally and report the
total once per phase; the registry is for phase-grained telemetry.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional

from repro.obs import trace

__all__ = ["Histogram", "MetricsRegistry", "registry",
           "inc", "gauge", "observe"]


class Histogram:
    """Base-2 bucketed distribution with exact summary statistics.

    Bucket ``b`` counts observations in ``(2**(b-1), 2**b]`` (bucket
    keys are the ceil of log2); zero and negative observations land in
    bucket ``"-inf"``.  Exposes ``count/total/min/max/mean``.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[str, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = "-inf" if value <= 0 else str(math.ceil(math.log2(value)))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": dict(self.buckets),
        }


class MetricsRegistry:
    """Thread-safe store for counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- mutators (no-op when the subsystem is disabled) ---------------
    def inc(self, name: str, value: float = 1) -> None:
        if not trace.enabled():
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        if not trace.enabled():
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not trace.enabled():
            return
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- readers -------------------------------------------------------
    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.to_dict()
                               for name, h in self._histograms.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry the instrumented engines report into.
registry = MetricsRegistry()


def inc(name: str, value: float = 1) -> None:
    registry.inc(name, value)


def gauge(name: str, value: float) -> None:
    registry.gauge(name, value)


def observe(name: str, value: float) -> None:
    registry.observe(name, value)
