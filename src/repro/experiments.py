"""The experiment registry: every paper-reproduction bench, as data.

Previously a CLI-private list in ``repro.__main__``; now a shared
module so the bench orchestrator (:mod:`repro.obs.runner`), the CLI,
and external tooling all consume one machine-readable source of truth.
Adding a bench = add a file under ``benchmarks/`` and one
:class:`Experiment` row here.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

__all__ = ["Experiment", "EXPERIMENTS", "SUBSYSTEMS",
           "experiments_by_id", "experiment_for_bench"]


@dataclass(frozen=True)
class Experiment:
    """One paper-reproduction bench."""

    id: str              # paper anchor: T1, F2..F9, C1..C13, P*
    title: str
    bench: str           # file under benchmarks/
    kind: str = "paper"  # "paper" (reproduces a figure/claim) | "perf"

    def to_dict(self) -> Dict[str, str]:
        return asdict(self)


EXPERIMENTS: List[Experiment] = [
    Experiment("T1", "Table I FIR capacitance", "bench_table1_fir.py"),
    Experiment("F2", "memory-access minimization", "bench_fig2_memory.py"),
    Experiment("F3", "static shutdown timeout", "bench_fig3_shutdown.py"),
    Experiment("F45", "polynomial restructuring",
               "bench_fig45_polynomial.py"),
    Experiment("F6", "precomputation", "bench_fig6_precompute.py"),
    Experiment("F7", "gated clocks", "bench_fig7_gated_clock.py"),
    Experiment("F8", "guarded evaluation", "bench_fig8_guarded.py"),
    Experiment("F9", "retiming", "bench_fig9_retiming.py"),
    Experiment("C1", "profile-driven program synthesis",
               "bench_c1_profile_synthesis.py"),
    Experiment("C2", "entropic models", "bench_c2_entropy.py"),
    Experiment("C3", "Tyagi FSM bound", "bench_c3_tyagi.py"),
    Experiment("C4", "complexity models", "bench_c4_complexity.py"),
    Experiment("C5", "macro-model ladder", "bench_c5_macromodel.py"),
    Experiment("C6", "sampling cosimulation", "bench_c6_sampling.py"),
    Experiment("C7", "predictive shutdown", "bench_c7_predictive.py"),
    Experiment("C8", "activity-aware allocation",
               "bench_c8_allocation.py"),
    Experiment("C9", "multiple supply voltages",
               "bench_c9_multivoltage.py"),
    Experiment("C10", "bus encoding", "bench_c10_bus_encoding.py"),
    Experiment("C11", "low-power state encoding",
               "bench_c11_fsm_encoding.py"),
    Experiment("C12", "low-power scheduling", "bench_c12_scheduling.py"),
    Experiment("C13", "cold scheduling", "bench_c13_cold_scheduling.py"),
    Experiment("P1", "bit-parallel engine vs scalar reference",
               "bench_perf_fastsim.py", kind="perf"),
    Experiment("P2", "BDD engine: fused image, ordering, sifting",
               "bench_perf_bdd.py", kind="perf"),
    Experiment("P3", "tick-wheel timed engine vs event-driven reference",
               "bench_perf_eventsim.py", kind="perf"),
    Experiment("P4", "bit-plane word-stream engine vs scalar statistics",
               "bench_perf_streams.py", kind="perf"),
    Experiment("P5", "numpy uint64 lane backend vs native bignum engine",
               "bench_perf_backends.py", kind="perf"),
    Experiment("P6", "plan-store warm starts + estimation service loadgen",
               "bench_perf_serve.py", kind="perf"),
    Experiment("P7", "learned macromodels vs the fixed ladder (Pareto)",
               "bench_perf_learned.py", kind="perf"),
    Experiment("P8", "incremental cone re-estimation vs full resim",
               "bench_perf_incremental.py", kind="perf"),
    Experiment("P9", "parallel candidate search: pool fan-out with "
               "store warm starts vs the serial walk",
               "bench_perf_search.py", kind="perf"),
]

SUBSYSTEMS: List[Dict[str, str]] = [
    {"module": "repro.bdd",
     "description": "ROBDD package (ite/quantify/compose/probability)"},
    {"module": "repro.twolevel",
     "description": "Quine-McCluskey + espresso-style minimization"},
    {"module": "repro.logic",
     "description": "gate netlists, simulators, synthesis, generators"},
    {"module": "repro.fsm",
     "description": "STGs, Markov analysis, encoding, symbolic traversal"},
    {"module": "repro.rtl",
     "description": "word streams, characterized components, RTL sim"},
    {"module": "repro.cdfg",
     "description": "dataflow graphs, scheduling, datapath synthesis"},
    {"module": "repro.software",
     "description": "energy-annotated ISA simulator"},
    {"module": "repro.estimation",
     "description": "Section II: all surveyed estimation models"},
    {"module": "repro.estimation.learned",
     "description": "learned macromodels: characterize / fit / serve"},
    {"module": "repro.optimization",
     "description": "Section III: all surveyed optimizations"},
    {"module": "repro.core",
     "description": "PowerEstimator facade + design-improvement loop"},
    {"module": "repro.obs",
     "description": "observability: tracing, metrics, bench orchestrator"},
]


def experiments_by_id() -> Dict[str, Experiment]:
    return {exp.id: exp for exp in EXPERIMENTS}


def experiment_for_bench(bench_name: str) -> Optional[Experiment]:
    for exp in EXPERIMENTS:
        if exp.bench == bench_name:
            return exp
    return None
