"""Numpy ``uint64`` lane-array backend.

An ``n``-bit packed word is a little-endian array of
``L = ceil(n / 64)`` lanes: bit ``t`` of the word is bit ``t % 64`` of
lane ``t // 64``.  The compiled gate kernels run unchanged — numpy's
``& | ^`` operate lane-wise over whole arrays, one machine-word AND
per 64 cycles — while the shape-aware primitives here carry bits
across lane boundaries for time shifts and unaligned extraction.

The invariant maintained by every constructor and primitive: the bits
above ``n`` in the last lane are zero, so popcounts and equality need
no re-masking.  Plain Python ints interoperate two ways: ``0`` is a
valid all-zeros word (broadcasting), and any primitive that receives
an int coerces or short-circuits it, because compiled plans seed
CONST/state slots with ints before the first array op replaces them.
"""

from __future__ import annotations

from repro.backend.core import Backend, BackendUnavailable, numpy_or_none
from repro.util.bits import popcount as _int_popcount

__all__ = ["NumpyLaneBackend"]

_LANE = 64


class NumpyLaneBackend(Backend):
    """Packed words as little-endian ``uint64`` lane arrays."""

    name = "numpy"

    def __init__(self) -> None:
        np = numpy_or_none()
        if np is None:
            raise BackendUnavailable("numpy is unavailable")
        self.np = np
        self._has_bitwise_count = hasattr(np, "bitwise_count")

    # -- helpers -----------------------------------------------------
    @staticmethod
    def lane_count(n: int) -> int:
        return (n + _LANE - 1) // _LANE

    def _coerce(self, w, n: int):
        """Promote a plain int word to a lane array."""
        if isinstance(w, int):
            return self.from_int(w & ((1 << n) - 1), n)
        return w

    # -- construction ------------------------------------------------
    def zeros(self, n: int):
        return self.np.zeros(self.lane_count(n), dtype=self.np.uint64)

    def ones_mask(self, n: int):
        np = self.np
        out = np.full(self.lane_count(n), np.uint64(0xFFFFFFFFFFFFFFFF),
                      dtype=np.uint64)
        rem = n & (_LANE - 1)
        if rem and len(out):
            out[-1] = np.uint64((1 << rem) - 1)
        return out

    def low_mask(self, c: int, n: int):
        np = self.np
        out = np.zeros(self.lane_count(n), dtype=np.uint64)
        full, rem = divmod(c, _LANE)
        out[:full] = np.uint64(0xFFFFFFFFFFFFFFFF)
        if rem:
            out[full] = np.uint64((1 << rem) - 1)
        return out

    def from_int(self, word: int, n: int):
        np = self.np
        nlanes = self.lane_count(n)
        raw = word.to_bytes(nlanes * 8, "little")
        return np.frombuffer(raw, dtype="<u8").astype(np.uint64)

    def to_int(self, w) -> int:
        if isinstance(w, int):
            return w
        return int.from_bytes(
            w.astype("<u8", copy=False).tobytes(), "little")

    # -- queries -----------------------------------------------------
    def popcount(self, w) -> int:
        if isinstance(w, int):
            return _int_popcount(w)
        if self._has_bitwise_count:
            return int(self.np.bitwise_count(w).sum())
        return _int_popcount(self.to_int(w))

    def nonzero(self, w) -> bool:
        if isinstance(w, int):
            return bool(w)
        return bool(w.any())

    def equal(self, a, b) -> bool:
        if isinstance(a, int) or isinstance(b, int):
            return self.to_int(a) == self.to_int(b)
        return bool(self.np.array_equal(a, b))

    def get_bit(self, w, t: int) -> int:
        if isinstance(w, int):
            return (w >> t) & 1
        return int(w[t >> 6] >> self.np.uint64(t & (_LANE - 1))) & 1

    # -- time shifts & slicing --------------------------------------
    def shift_in_time(self, w, n: int, carry: int = 0):
        np = self.np
        w = self._coerce(w, n)
        out = w << np.uint64(1)
        out[1:] |= w[:-1] >> np.uint64(_LANE - 1)
        if carry and len(out):
            out[0] |= np.uint64(1)
        rem = n & (_LANE - 1)
        if rem and len(out):
            out[-1] &= np.uint64((1 << rem) - 1)
        return out

    def shift_out_time(self, w):
        np = self.np
        if isinstance(w, int):
            return w >> 1
        out = w >> np.uint64(1)
        out[:-1] |= w[1:] << np.uint64(_LANE - 1)
        return out

    def toggle_count(self, w, n: int, carry: int = 0) -> int:
        np = self.np
        w = self._coerce(w, n)
        d = w << np.uint64(1)
        d[1:] |= w[:-1] >> np.uint64(_LANE - 1)
        if carry and len(d):
            d[0] |= np.uint64(1)
        rem = n & (_LANE - 1)
        if rem and len(d):
            d[-1] &= np.uint64((1 << rem) - 1)
        d ^= w
        return self.popcount(d)

    def extract(self, w, lo: int, c: int):
        np = self.np
        if isinstance(w, int):
            return self.from_int((w >> lo) & ((1 << c) - 1), c)
        nlanes = self.lane_count(c)
        q, r = divmod(lo, _LANE)
        src = w[q:q + nlanes + 1]
        if len(src) < nlanes + 1:
            src = np.concatenate(
                [src, np.zeros(nlanes + 1 - len(src), dtype=np.uint64)])
        if r == 0:
            out = src[:nlanes].copy()
        else:
            out = (src[:nlanes] >> np.uint64(r)) \
                | (src[1:nlanes + 1] << np.uint64(_LANE - r))
        rem = c & (_LANE - 1)
        if rem and len(out):
            out[-1] &= np.uint64((1 << rem) - 1)
        return out

    def blit(self, dst, src, base: int):
        if base & (_LANE - 1):
            raise ValueError("lane blit requires a 64-bit-aligned base")
        if isinstance(src, int):
            if not src:
                return dst
            src = self.from_int(src, src.bit_length())
        q = base >> 6
        dst[q:q + len(src)] |= src
        return dst
