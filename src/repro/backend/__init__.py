"""Packed-word backends behind one seam (see :mod:`repro.backend.core`)."""

from repro.backend.core import (
    AUTO_NUMPY_MIN_CYCLES,
    BACKEND_NAMES,
    Backend,
    BackendUnavailable,
    BignumBackend,
    ENGINES,
    auto_select,
    available_backends,
    default_engine,
    get_backend,
    numpy_available,
    numpy_or_none,
    resolve_engine,
)

__all__ = [
    "AUTO_NUMPY_MIN_CYCLES", "BACKEND_NAMES", "Backend",
    "BackendUnavailable", "BignumBackend", "ENGINES",
    "auto_select", "available_backends", "default_engine",
    "get_backend", "numpy_available", "numpy_or_none",
    "resolve_engine",
]
