"""The backend seam: packed-word kernels behind one small interface.

All three fast engines — :mod:`repro.logic.fastsim` (zero-delay
batches), :mod:`repro.logic.fasttimer` (per-(net, tick) waveform
replay) and :mod:`repro.rtl.faststreams` (bit-plane word-stream
statistics) — share the same data model: a *word* holds one bit per
simulated cycle (or vector, or stream position) and the kernels are
bitwise operations plus popcounts over whole words.  This module
defines the handful of primitives those kernels need and ships the
reference implementation on arbitrary-precision Python integers
(:class:`BignumBackend`); :mod:`repro.backend.lanes` implements the
same contract on numpy ``uint64`` lane arrays, sharding ``N`` cycles
across ``ceil(N / 64)`` lanes — the software analogue of mapping
concurrent-cycle evaluation onto wide parallel hardware lanes
(power emulation, arXiv 0710.4742).

Word contract
-------------

A backend word represents ``n`` bits, bit ``t`` holding cycle ``t``.
Bignum words are plain ints; numpy words are little-endian ``uint64``
arrays of ``ceil(n / 64)`` lanes (bit ``t`` lives at bit ``t % 64`` of
lane ``t // 64``) whose unused high bits are always zero.  Python's
bitwise operators (``& | ^``) combine words of either backend
elementwise, and the integer ``0`` is a valid all-zeros word for both
(numpy broadcasting keeps the compiled gate kernels backend-agnostic).
Everything shape- or carry-dependent goes through the interface:
masks, time shifts, bit extraction, popcounts, packing.

Engine dispatch
---------------

Public simulation entry points accept
``engine="fast" | "numpy" | "reference" | "auto"``; ``"fast"`` is the
compiled bignum path, ``"numpy"`` the lane-array path, ``"reference"``
the scalar engine, and ``"auto"`` picks per workload shape
(:func:`auto_select`).  Fallback is a chain, not an error: a numpy
request degrades to the bignum path when numpy is unavailable (or the
plan cannot be lowered), which degrades to the reference engine.
Setting ``REPRO_NO_NUMPY=1`` makes every seam module behave as if
numpy were not installed — CI runs the suite once that way to keep
the whole chain green.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.util.bits import popcount as _popcount

__all__ = [
    "Backend", "BignumBackend", "BackendUnavailable",
    "ENGINES", "BACKEND_NAMES",
    "numpy_or_none", "numpy_available",
    "get_backend", "available_backends",
    "auto_select", "resolve_engine", "default_engine",
    "AUTO_NUMPY_MIN_CYCLES", "AUTO_NUMPY_MIN_SEQ_CYCLES",
]

#: Engine names accepted by dispatching entry points.
ENGINES = ("fast", "numpy", "reference", "auto")

#: Concrete packed-kernel backends (the reference engine is scalar
#: and has no packed backend).
BACKEND_NAMES = ("bignum", "numpy")


class BackendUnavailable(RuntimeError):
    """The requested backend cannot run here (numpy missing/stubbed)."""


def numpy_or_none():
    """The numpy module, or None when absent or stubbed out.

    ``REPRO_NO_NUMPY=1`` (any non-empty value) simulates a missing
    numpy for every module that consumes it through this helper — the
    single switch behind the CI fallback-chain leg.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy as np
    except ImportError:              # pragma: no cover - baked in
        return None
    return np


def numpy_available() -> bool:
    """True when the numpy lane backend can run."""
    return numpy_or_none() is not None


class Backend:
    """Packed-word primitive set shared by the compiled engines.

    Subclasses provide a concrete word representation.  ``n`` always
    means the word's logical bit length; implementations may assume
    ``0 <= n`` and that word arguments were produced by this backend
    (or are the integer ``0``).
    """

    name = "abstract"

    # -- construction ------------------------------------------------
    def zeros(self, n: int):
        """The all-zeros n-bit word."""
        raise NotImplementedError

    def ones_mask(self, n: int):
        """The word with all ``n`` low bits set."""
        raise NotImplementedError

    def low_mask(self, c: int, n: int):
        """An n-bit-shaped word with only the ``c`` lowest bits set.

        Equals ``ones_mask(c)`` for the bignum backend; lane backends
        keep the lane count of an ``n``-bit word so the result stays
        shape-compatible with its peers.
        """
        raise NotImplementedError

    def from_int(self, word: int, n: int):
        """Pack a non-negative ``n``-bit Python int into a word."""
        raise NotImplementedError

    def to_int(self, w) -> int:
        """Unpack a word back into a Python int."""
        raise NotImplementedError

    # -- queries -----------------------------------------------------
    def popcount(self, w) -> int:
        """Number of set bits."""
        raise NotImplementedError

    def nonzero(self, w) -> bool:
        """True when any bit is set."""
        raise NotImplementedError

    def equal(self, a, b) -> bool:
        """Exact bit equality of two words."""
        raise NotImplementedError

    def get_bit(self, w, t: int) -> int:
        """Bit ``t`` as a Python 0/1 int."""
        raise NotImplementedError

    # -- time shifts & slicing --------------------------------------
    def shift_in_time(self, w, n: int, carry: int = 0):
        """``((w << 1) | carry)`` truncated to ``n`` bits.

        Moves every cycle one step later and shifts ``carry`` (the
        previous cycle's bit) into cycle 0 — the transition-alignment
        primitive of every toggle count and latch fixed point.
        """
        raise NotImplementedError

    def shift_out_time(self, w):
        """``w >> 1``: drop cycle 0, align each cycle with its successor."""
        raise NotImplementedError

    def toggle_count(self, w, n: int, carry: int = 0) -> int:
        """``popcount(w ^ shift_in_time(w, n, carry))``, fused.

        The per-net inner loop of activity collection; backends fuse
        the shift, xor and popcount to avoid materializing
        intermediates.  ``w`` must be masked to ``n`` bits.
        """
        d = self.shift_in_time(w, n, carry)
        d = d ^ w
        return self.popcount(d)

    def batch_stats(self, words, n: int, carries=None):
        """Per-word ``(ones, toggles, last_bit)`` lists, in one sweep.

        The activity-collection inner loop over all net slots of one
        chunk: for each ``n``-bit word, its popcount, its toggle count
        with ``carries[i]`` shifted in (``carries=None`` seeds each
        word's own bit 0 — the no-predecessor first chunk), and bit
        ``n - 1`` (the carry into the next chunk).  Lane backends
        override this with a single stacked 2-D pass.
        """
        ones = []
        toggles = []
        last = []
        for i, w in enumerate(words):
            ones.append(self.popcount(w))
            carry = self.get_bit(w, 0) if carries is None else carries[i]
            toggles.append(self.toggle_count(w, n, carry))
            last.append(self.get_bit(w, n - 1))
        return ones, toggles, last

    def extract(self, w, lo: int, c: int):
        """``(w >> lo) & ones_mask(c)`` as a canonical c-bit word."""
        raise NotImplementedError

    def blit(self, dst, src, base: int):
        """OR the pre-masked chunk ``src`` into ``dst`` at bit ``base``.

        ``base`` must be lane-aligned for lane backends (the chunk
        iterators guarantee 64-bit-aligned chunk starts).  Returns the
        updated destination word (bignum words are immutable; lane
        words are updated in place and returned).
        """
        raise NotImplementedError


class BignumBackend(Backend):
    """Arbitrary-precision integer words — the existing fast path.

    One Python int per net carries the whole batch; every primitive
    is a single C-level big-int operation.
    """

    name = "bignum"

    def zeros(self, n: int) -> int:
        return 0

    def ones_mask(self, n: int) -> int:
        return (1 << n) - 1

    def low_mask(self, c: int, n: int) -> int:
        return (1 << c) - 1

    def from_int(self, word: int, n: int) -> int:
        return word

    def to_int(self, w: int) -> int:
        return w

    def popcount(self, w: int) -> int:
        return _popcount(w)

    def nonzero(self, w: int) -> bool:
        return bool(w)

    def equal(self, a: int, b: int) -> bool:
        return a == b

    def get_bit(self, w: int, t: int) -> int:
        return (w >> t) & 1

    def shift_in_time(self, w: int, n: int, carry: int = 0) -> int:
        return (((w << 1) | carry) & ((1 << n) - 1))

    def shift_out_time(self, w: int) -> int:
        return w >> 1

    def toggle_count(self, w: int, n: int, carry: int = 0) -> int:
        return _popcount((w ^ ((w << 1) | carry)) & ((1 << n) - 1))

    def extract(self, w: int, lo: int, c: int) -> int:
        return (w >> lo) & ((1 << c) - 1)

    def blit(self, dst: int, src: int, base: int) -> int:
        return dst | (src << base)


_BIGNUM = BignumBackend()
_NUMPY_CACHE: Optional[Backend] = None


def get_backend(name) -> Backend:
    """Resolve a backend by name (or pass a :class:`Backend` through).

    ``"bignum"`` (alias ``"fast"``) always works; ``"numpy"`` raises
    :class:`BackendUnavailable` when numpy is missing or stubbed out,
    so dispatchers can fall down the chain.
    """
    if isinstance(name, Backend):
        return name
    if name in ("bignum", "fast"):
        return _BIGNUM
    if name == "numpy":
        global _NUMPY_CACHE
        if numpy_or_none() is None:
            raise BackendUnavailable(
                "numpy backend requested but numpy is unavailable "
                "(not installed, or REPRO_NO_NUMPY is set)")
        if _NUMPY_CACHE is None:
            from repro.backend.lanes import NumpyLaneBackend
            _NUMPY_CACHE = NumpyLaneBackend()
        return _NUMPY_CACHE
    raise ValueError(f"unknown backend {name!r}; "
                     f"expected one of {BACKEND_NAMES}")


def available_backends() -> List[str]:
    """Backends that can run in this process, preferred first."""
    names = ["bignum"]
    if numpy_available():
        names.append("numpy")
    return names


#: Batches shorter than this stay on the bignum path under
#: ``engine="auto"``: per-operation numpy overhead (array allocation,
#: ufunc dispatch) beats the win from wider lanes until words are a
#: few thousand bits long.  Calibrated against
#: ``benchmarks/bench_perf_backends.py`` (narrow-long vs wide-short).
AUTO_NUMPY_MIN_CYCLES = 4096


#: Sequential batches shorter than this stay on bignums even under
#: ``auto``: chunked fixed-point iteration amortizes lane overhead
#: more slowly than a single combinational pass.
AUTO_NUMPY_MIN_SEQ_CYCLES = 65536


def auto_select(cycles: Optional[int] = None,
                lanes: Optional[int] = None,
                sequential: bool = False) -> str:
    """Pick the winning backend for a workload shape.

    ``cycles`` is the batch length (word bit length), ``lanes`` the
    number of packed words in flight (nets, or stream width), and
    ``sequential`` marks chunked latch fixed-point workloads, which
    need longer batches before lanes pay off.  Narrow-long workloads
    go to the numpy lane backend; wide-short ones stay on bignums,
    whose small-word constant factors win.  The choice lands in
    telemetry as a ``backend.auto.*`` counter.
    """
    from repro import obs

    floor = AUTO_NUMPY_MIN_SEQ_CYCLES if sequential \
        else AUTO_NUMPY_MIN_CYCLES
    if cycles is None or cycles < floor or not numpy_available():
        choice = "fast"
    else:
        choice = "numpy"
    if obs.enabled():
        obs.inc(f"backend.auto.{choice}")
        obs.inc("backend.auto.decisions")
    return choice


def resolve_engine(engine: Optional[str], default: str = "fast",
                   cycles: Optional[int] = None,
                   lanes: Optional[int] = None,
                   sequential: bool = False) -> str:
    """Validate an engine name and resolve it to a concrete engine.

    ``None`` takes ``default``; ``"auto"`` consults
    :func:`auto_select`; ``"numpy"`` silently degrades to ``"fast"``
    when the lane backend cannot run (the documented fallback chain).
    Unknown names raise ``ValueError``.
    """
    e = engine or default
    if e not in ENGINES:
        raise ValueError(f"unknown engine {e!r}; expected 'fast', "
                         "'numpy', 'reference' or 'auto'")
    if e == "auto":
        e = auto_select(cycles=cycles, lanes=lanes, sequential=sequential)
    if e == "numpy" and not numpy_available():
        e = "fast"
    return e


def default_engine(env: str = "REPRO_ENGINE") -> str:
    """Process-wide default engine, overridable via ``REPRO_ENGINE``.

    The bench orchestrator's ``--backend`` flag exports this variable
    to its workers so a whole sweep can run on a chosen backend (or
    on ``auto``).  Invalid values fall back to ``"fast"`` rather than
    poisoning every default-engine call site.
    """
    value = os.environ.get(env)
    return value if value in ENGINES else "fast"
