"""The complete Fig. 1 loop, closed: behaviour to measured gates.

Starts from an FIR behaviour, makes the behavioral choice with a
high-level estimate, schedules/binds/allocates, synthesizes the actual
datapath + one-hot controller netlist, and measures the implemented
design's switched-capacitance energy — then compares what the
high-level estimator predicted with what the gates actually burn.

Run:  python examples/full_flow.py
"""

import random

from repro.cdfg import ModuleLibrary
from repro.cdfg.datapath import synthesize_from_cdfg
from repro.cdfg.transforms import fir_filter
from repro.estimation.quicksynth import quick_synthesis_estimate


def main() -> None:
    width = 6
    taps = [3, 5, 7]
    cdfg = fir_filter(taps, width=width)
    rng = random.Random(0)
    streams = {f"x{i}": [rng.randrange(1 << width) for _ in range(32)]
               for i in range(len(taps))}
    library = ModuleLibrary(width=width, voltages=(1.0,),
                            characterization_cycles=100)

    print(f"behaviour: FIR({len(taps)} taps), "
          f"ops = {cdfg.operation_counts()}")
    print()
    print(f"{'design':22s} {'latency':>7s} {'gates':>6s} {'flops':>6s} "
          f"{'estimated':>10s} {'measured':>9s}")

    for label, resources in [
        ("serial (1 mult)", {"mult": 1, "add": 1}),
        ("parallel (3 mult)", {"mult": 3, "add": 2}),
    ]:
        estimate = quick_synthesis_estimate(
            cdfg, library=library, resources=dict(resources),
            input_streams=streams)
        design = synthesize_from_cdfg(cdfg, dict(resources),
                                      input_streams=streams, width=width)

        # Functional sanity: the gates compute the behaviour.
        outputs, energy = design.evaluate_stream(streams)
        for t in range(len(streams["x0"])):
            words = {k: s[t] for k, s in streams.items()}
            assert outputs[t]["y"] == cdfg.evaluate(words)["y"]

        est_per_iter = estimate.total * estimate.latency
        meas_per_iter = energy / len(streams["x0"])
        print(f"{label:22s} {design.latency:7d} "
              f"{design.circuit.gate_count():6d} "
              f"{len(design.circuit.latches):6d} "
              f"{est_per_iter:10.1f} {meas_per_iter:9.1f}")

    print()
    print("Both designs verified bit-exact against the behaviour; the")
    print("behavioral estimate tracks the measured per-iteration energy")
    print("closely enough to rank the two implementations correctly --")
    print("which is all the Fig. 1 design-improvement loop needs.")


if __name__ == "__main__":
    main()
