"""Quickstart: estimate one design's power at several abstraction levels.

Builds an 8-bit ripple-carry adder, then asks the framework for its
power the way the paper's Fig. 1 flow would at each level:

- gate level (zero-delay and glitch-aware event-driven simulation),
- gate level probabilistic (transition densities on BDDs),
- behavioral information-theoretic models (Section II-B1),
- an RT-level macro-model fitted on pseudorandom data (Section II-C1).

Run:  python examples/quickstart.py
"""

from repro import PowerEstimator
from repro.estimation.macromodel import BitwiseModel, fit_macromodel
from repro.logic.generators import ripple_carry_adder
from repro.logic.simulate import random_vectors
from repro.rtl.components import make_component
from repro.rtl.streams import random_stream


def main() -> None:
    width = 8
    circuit = ripple_carry_adder(width)
    vectors = random_vectors(circuit.inputs, 600, seed=0)
    estimator = PowerEstimator(vdd=1.0, freq=1.0)

    print(f"design: {circuit}")
    print(f"  area              : {circuit.area():.1f} gate equivalents")
    print(f"  depth             : {circuit.depth()} levels")
    print(f"  total capacitance : {circuit.total_capacitance():.1f} C0")
    print()

    gate = estimator.gate(circuit, vectors, technique="simulation")
    timed = estimator.gate(circuit, vectors, technique="event-driven")
    density = estimator.gate(circuit, technique="probabilistic")
    entropic = estimator.entropic(circuit, vectors, model="marculescu")
    nn = estimator.entropic(circuit, vectors, model="nemani-najm")

    component = make_component("add", width)
    model = fit_macromodel(BitwiseModel(), component)
    streams = [random_stream(width, 600, seed=1),
               random_stream(width, 600, seed=2)]
    rtl = estimator.rtl(component, streams, model=model,
                        evaluation="sampler")

    print("power estimates (normalized units, 0.5 V^2 f C_sw):")
    rows = [
        ("gate-level simulation (reference)", gate),
        ("event-driven (incl. glitches)", timed),
        ("transition density (probabilistic)", density),
        ("entropy model: Marculescu h_avg", entropic),
        ("entropy model: Nemani-Najm h_avg", nn),
        ("RTL bitwise macro-model (sampled)", rtl),
    ]
    for label, result in rows:
        ratio = result.power / gate.power if gate.power else float("nan")
        print(f"  {label:38s} {result.power:9.3f}"
              f"   ({ratio:5.2f}x reference, cost={result.cost:.0f})")

    print()
    print("The high-level models are orders of magnitude cheaper and")
    print("land within a small factor of the reference -- the tradeoff")
    print("the survey's Fig. 1 design-improvement loop is built on.")


if __name__ == "__main__":
    main()
