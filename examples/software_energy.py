"""Software power estimation and optimization (Sections II-A, III-A).

1. Characterizes the Tiwari instruction-level model on the framework's
   machine and validates it on kernels,
2. compacts a long trace with profile-driven program synthesis,
3. reorders a basic block with cold scheduling,
4. compares the two memory-access code shapes of Fig. 2.

Run:  python examples/software_energy.py
"""

from repro.estimation.software_power import (
    TiwariModel,
    profile_synthesis_experiment,
)
from repro.optimization.software_opt import (
    energy_aware_selection,
    evaluate_cold_scheduling,
    multiply_by_constant_alternatives,
)
from repro.software import (
    Instruction,
    Machine,
    dot_product,
    fir_program,
    memory_optimized,
    memory_unoptimized,
    random_program,
)

I = Instruction


def tiwari_study() -> None:
    print("Tiwari instruction-level model:")
    model = TiwariModel.characterize(loop_length=300)
    shown = ["NOP", "ADD", "MUL", "LD", "ST", "ADDI"]
    print("  base costs: "
          + ", ".join(f"{op}={model.base_costs[op]:.2f}" for op in shown))
    for name, program, init in [
        ("dot_product(64)", dot_product(64), list(range(64))),
        ("fir(3 taps, 100)", fir_program([2, 3, 1], 100),
         [k % 37 for k in range(256)]),
        ("random mix", random_program(800, seed=1), None),
    ]:
        machine = Machine()
        if init:
            machine.load_memory(0, init)
            machine.load_memory(1024, init)
            machine.load_memory(3000, [2, 3, 1])
        stats = machine.run(program)
        err = model.relative_error(stats)
        print(f"  {name:18s}: measured {stats.energy:9.1f}, "
              f"model {model.estimate(stats):9.1f}  ({err:.1%} error)")


def profile_study() -> None:
    print()
    print("profile-driven program synthesis (Hsieh et al.):")
    machine = Machine()
    machine.load_memory(0, [k % 97 for k in range(512)])
    machine.load_memory(3000, [2, 3, 1, 4])
    long_program = fir_program([2, 3, 1, 4], 200)
    report = profile_synthesis_experiment(long_program,
                                          synthesized_length=350, seed=0)
    print(f"  original trace     : {report.original_instructions} "
          f"instructions, {report.original_epi:.3f} energy/instr")
    print(f"  synthesized trace  : {report.synthesized_instructions} "
          f"instructions, {report.synthesized_epi:.3f} energy/instr")
    print(f"  compaction         : {report.compaction:.1f}x shorter")
    print(f"  energy/instr error : {report.epi_error:.1%}")


def cold_scheduling_study() -> None:
    print()
    print("cold scheduling (instruction-bus transition minimization):")
    block = random_program(80, seed=9)[:-1]
    report = evaluate_cold_scheduling(block, memory_init=list(range(64)))
    print(f"  semantics preserved : {report.equivalent}")
    print(f"  bus toggles         : {report.original_toggles} -> "
          f"{report.scheduled_toggles} "
          f"({report.toggle_reduction:.1%} fewer)")
    print(f"  total energy        : {report.original_energy:.1f} -> "
          f"{report.scheduled_energy:.1f}")


def selection_and_memory_study() -> None:
    print()
    print("energy-aware instruction selection (x * 12):")
    setup = [I("ADDI", rd=7, rs=0, imm=11)]
    alternatives = [setup + list(alt) for alt in
                    multiply_by_constant_alternatives(7, 8, 12)]
    winner, energies = energy_aware_selection(alternatives)
    labels = ["MUL immediate", "CSD shift/add"]
    for label, energy in zip(labels, energies):
        marker = " <- selected" if labels.index(label) == winner else ""
        print(f"  {label:15s}: {energy:.2f}{marker}")

    print()
    print("memory-access minimization (Fig. 2, n = 128):")
    n = 128
    for label, program in [("b[] through memory", memory_unoptimized(n)),
                           ("b in a register", memory_optimized(n))]:
        machine = Machine()
        machine.load_memory(0, [k % 17 for k in range(n)])
        stats = machine.run(program)
        print(f"  {label:20s}: {stats.cache_accesses:5d} accesses, "
              f"energy {stats.energy:8.1f}")


def main() -> None:
    tiwari_study()
    profile_study()
    cold_scheduling_study()
    selection_and_memory_study()


if __name__ == "__main__":
    main()
