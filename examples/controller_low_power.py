"""Low-power controller design (Section III-H + III-I on a real FSM).

Takes the 'handshake' benchmark controller through the paper's
controller flow:

1. state minimization,
2. state-encoding comparison (binary / Gray / one-hot / annealed
   low-power) with the Tyagi entropic lower bound as the yardstick,
3. synthesis to gates and measured switched-capacitance power,
4. gated-clock insertion on an idle-dominated workload,
5. decomposition into two submachines with shutdown potential.

Run:  python examples/controller_low_power.py
"""

import random

from repro.estimation.tyagi import expected_hamming_switching, \
    tyagi_lower_bound
from repro.fsm import (
    benchmark,
    binary_encoding,
    encoding_switching_cost,
    gray_encoding,
    low_power_encoding,
    minimize_states,
    one_hot_encoding,
    synthesize_fsm,
)
from repro.fsm.decompose import evaluate_decomposition
from repro.logic.simulate import collect_activity
from repro.optimization.clock_gating import evaluate_clock_gating


def main() -> None:
    stg = benchmark("handshake")
    print(f"controller: {stg}")
    reduced = minimize_states(stg)
    print(f"after state minimization: {reduced.n_states} states "
          f"(from {stg.n_states})")
    stg = reduced

    # --- encoding comparison -------------------------------------------
    encodings = {
        "binary": binary_encoding(stg),
        "gray-order": gray_encoding(stg),
        "one-hot": one_hot_encoding(stg),
        "low-power (annealed)": low_power_encoding(stg, seed=1),
    }
    bound = tyagi_lower_bound(stg)
    print()
    print(f"Tyagi entropic lower bound on state-line switching: "
          f"{max(0.0, bound):.3f} bits/cycle")
    print(f"{'encoding':24s} {'E[Hamming]/cycle':>17s} "
          f"{'netlist power':>14s} {'gates':>6s}")

    rng = random.Random(7)
    vectors = [{f"in{i}": rng.randrange(2) for i in range(stg.n_inputs)}
               for _ in range(500)]
    for name, enc in encodings.items():
        switching = expected_hamming_switching(stg, enc)
        circuit = synthesize_fsm(stg, enc)
        power = collect_activity(circuit, vectors).average_power()
        print(f"{name:24s} {switching:17.3f} {power:14.3f} "
              f"{circuit.gate_count():6d}")

    # --- gated clock ----------------------------------------------------
    print()
    print("gated clock on an idle-dominated workload (req mostly low):")
    report = evaluate_clock_gating(
        stg, encoding=one_hot_encoding(stg), cycles=600, seed=2,
        bit_probs=[0.05] + [0.5] * (stg.n_inputs - 1))
    print(f"  idle fraction        : {report.idle_fraction:6.1%}")
    print(f"  Fa network size      : {report.fa_gates} gates")
    print(f"  power without gating : {report.original_power:8.3f}")
    print(f"  power with gating    : {report.gated_power:8.3f}"
          f"  ({report.saving:+.1%})")

    # --- decomposition ----------------------------------------------------
    print()
    decomp = evaluate_decomposition(benchmark("bbsse_like"))
    d = decomp.decomposition
    print("decomposition of 'bbsse_like' into interacting submachines:")
    print(f"  A = {d.part_a}")
    print(f"  B = {d.part_b}")
    print(f"  handoffs/cycle       : {decomp.handoffs_per_cycle:6.3f}")
    print(f"  shutdown potential   : {decomp.shutdown_potential:6.1%} "
          f"of (machine, cycle) pairs")


if __name__ == "__main__":
    main()
