"""Behavioral-to-RTL low-power flow on an FIR filter (Table I scenario).

Walks the paper's Section III pipeline on an 8-tap FIR kernel:

1. behavioral transformation: constant multiplications -> shift/add
   (the Table I transformation), ranked via the design-improvement
   loop with a quick-synthesis estimator,
2. scheduling under resource constraints, plain vs activity-aware
   (Section III-D),
3. register allocation, switching-blind vs activity-aware
   (Section III-E),
4. multiple-voltage scheduling energy/latency tradeoff
   (Section III-F).

Run:  python examples/fir_filter_flow.py
"""

import random

from repro import DesignImprovementLoop, PowerEstimator
from repro.cdfg import ModuleLibrary, list_schedule
from repro.cdfg.transforms import convert_constant_multiplications, \
    fir_filter
from repro.optimization.allocation import allocate_registers
from repro.optimization.lp_scheduling import (
    activity_aware_schedule,
    fu_input_switching,
    greedy_binding,
)
from repro.optimization.multivoltage import energy_latency_tradeoff


def main() -> None:
    taps = [3, 5, 7, 9, 7, 5, 3, 1]
    cdfg = fir_filter(taps, width=12)
    print(f"FIR({len(taps)} taps): ops = {cdfg.operation_counts()}, "
          f"critical path = {cdfg.critical_path()}")

    # --- 1. behavioral transformation --------------------------------
    loop = DesignImprovementLoop()
    estimator = PowerEstimator()

    def evaluator(graph):
        return estimator.behavioral(graph, technique="gate-equivalents")

    chosen = loop.improve(
        "behavioral", cdfg,
        {"const-mult->shift/add": convert_constant_multiplications},
        evaluator)
    print()
    print(loop.report())
    print(f"transformed ops: {chosen.operation_counts()}")

    # --- 2. scheduling ------------------------------------------------
    resources = {"mult": 2, "add": 2, "sub": 2, "lshift": 2}
    rng = random.Random(0)
    names = [n.name for n in cdfg.nodes if n.kind == "input"]
    streams = {name: [rng.randrange(1 << 12) for _ in range(80)]
               for name in names}

    plain = list_schedule(cdfg, resources)
    smart = activity_aware_schedule(cdfg, resources)
    plain_sw = fu_input_switching(
        cdfg, plain, greedy_binding(cdfg, plain, resources), streams)
    smart_sw = fu_input_switching(
        cdfg, smart, greedy_binding(cdfg, smart, resources), streams)
    print()
    print("scheduling (FU-input bits switched per iteration):")
    print(f"  plain list scheduling    : {plain_sw:8.1f} "
          f"(latency {plain.latency})")
    print(f"  activity-aware (Musoll)  : {smart_sw:8.1f} "
          f"(latency {smart.latency})")

    # --- 3. register allocation ---------------------------------------
    blind = allocate_registers(cdfg, plain, streams, activity_aware=False)
    aware = allocate_registers(cdfg, plain, streams, activity_aware=True)
    print()
    print("register allocation (bits switched at register inputs):")
    print(f"  switching-blind          : {blind.switching_cost:8.1f} "
          f"({blind.n_resources} registers)")
    print(f"  W = Wc(1-Ws) weighted    : {aware.switching_cost:8.1f} "
          f"({aware.n_resources} registers)")

    # --- 4. multiple supply voltages -----------------------------------
    small = fir_filter(taps[:3], width=8)   # DP on a tree-sized kernel
    library = ModuleLibrary(width=4, characterization_cycles=100)
    print()
    print("multiple-voltage scheduling (energy vs latency bound):")
    for latency, energy in energy_latency_tradeoff(small, library,
                                                   n_points=5):
        print(f"  latency <= {latency:7.2f} : energy {energy:8.3f}")


if __name__ == "__main__":
    main()
