"""System-level power management and bus encoding (Sections III-B/III-G).

Models an event-driven device (X-server-style heavy-tailed idle
periods) and compares every shutdown policy of the paper, then encodes
the device's memory address streams with each surveyed bus code.

Run:  python examples/power_managed_system.py
"""

from repro.optimization.bus_encoding import (
    BeachCode,
    BinaryCode,
    BusInvertCode,
    GrayCode,
    T0BusInvertCode,
    T0Code,
    WorkingZoneCode,
    correlated_block_addresses,
    count_transitions,
    interleaved_array_addresses,
    random_addresses,
    sequential_addresses,
)
from repro.optimization.shutdown import (
    AlwaysOnPolicy,
    HwangWuPolicy,
    OraclePolicy,
    SrivastavaHeuristicPolicy,
    SrivastavaRegressionPolicy,
    StaticTimeoutPolicy,
    breakeven_time,
    generate_workload,
    simulate_policy,
)


def shutdown_study() -> None:
    workload = generate_workload(n_periods=400, seed=3,
                                 mean_active=8.0, mean_idle=120.0)
    be = breakeven_time()
    print("shutdown policies (event-driven workload, "
          f"T_I/T_A = {workload.total_idle / workload.total_active:.1f}, "
          f"upper bound {workload.shutdown_upper_bound():.1f}x):")
    policies = [
        AlwaysOnPolicy(),
        StaticTimeoutPolicy(timeout=2 * be),
        StaticTimeoutPolicy(timeout=0.5 * be),
        SrivastavaHeuristicPolicy(),
        SrivastavaRegressionPolicy(be),
        HwangWuPolicy(be),
        OraclePolicy(be),
    ]
    print(f"  {'policy':26s} {'improvement':>11s} {'latency pen.':>13s} "
          f"{'sleeps':>7s} {'mispred':>8s}")
    for policy in policies:
        r = simulate_policy(workload, policy)
        print(f"  {r.policy:26s} {r.improvement:10.2f}x "
              f"{r.latency_penalty:12.2%} {r.sleeps:7d} "
              f"{r.mispredictions:8d}")


def bus_study() -> None:
    width = 12
    streams = {
        "sequential": sequential_addresses(width, 800),
        "interleaved arrays": interleaved_array_addresses(
            width, 800, n_arrays=3, seed=4, base_stride=256),
        "block-correlated": correlated_block_addresses(width, 800, seed=5),
        "random data": random_addresses(width, 800, seed=6),
    }
    print()
    print("bus codes (transitions per cycle; lower is better):")
    header = f"  {'stream':20s}"
    codes = ["binary", "bus-invert", "gray", "t0", "t0-bi",
             "working-zone", "beach"]
    for c in codes:
        header += f" {c:>13s}"
    print(header)

    for name, stream in streams.items():
        beach = BeachCode(width)
        beach.train(stream.words[:len(stream.words) // 2])
        row = [
            BinaryCode(width), BusInvertCode(width), GrayCode(width),
            T0Code(width), T0BusInvertCode(width),
            WorkingZoneCode(width, n_zones=4, offset_bits=4), beach,
        ]
        line = f"  {name:20s}"
        for code in row:
            report = count_transitions(code, stream)
            line += f" {report.per_cycle:13.3f}"
        print(line)
    print("  (each code decodes losslessly; verified on every run)")


def main() -> None:
    shutdown_study()
    bus_study()


if __name__ == "__main__":
    main()
